let pick st l = List.nth l (Random.State.int st (List.length l))

let literal st vars =
  let x = pick st vars in
  if Random.State.bool st then Formula.var x else Formula.not_ (Formula.var x)

let rec formula st ~vars ~depth =
  if depth <= 0 || Random.State.int st 100 < 15 then
    if Random.State.int st 100 < 5 then
      if Random.State.bool st then Formula.top else Formula.bot
    else literal st vars
  else begin
    let sub () = formula st ~vars ~depth:(depth - 1) in
    match Random.State.int st 6 with
    | 0 -> Formula.not_ (sub ())
    | 1 -> Formula.and_ (List.init (2 + Random.State.int st 2) (fun _ -> sub ()))
    | 2 -> Formula.or_ (List.init (2 + Random.State.int st 2) (fun _ -> sub ()))
    | 3 -> Formula.imp (sub ()) (sub ())
    | 4 -> Formula.iff (sub ()) (sub ())
    | _ -> Formula.xor (sub ()) (sub ())
  end

let theory st ~vars ~members ~depth =
  List.init members (fun _ -> formula st ~vars ~depth)

let clause3 st ~vars =
  if List.length vars < 3 then invalid_arg "Gen.clause3: need >= 3 letters";
  let rec distinct acc =
    if List.length acc = 3 then acc
    else begin
      let x = pick st vars in
      if List.mem x acc then distinct acc else distinct (x :: acc)
    end
  in
  Formula.or_ (List.map (fun x -> literal st [ x ]) (distinct []))

let cnf3 st ~vars ~nclauses =
  Formula.and_ (List.init nclauses (fun _ -> clause3 st ~vars))

let letters ?(prefix = "x") n =
  List.init n (fun i -> Var.named (Printf.sprintf "%s%d" prefix (i + 1)))

let interp st ~vars =
  List.fold_left
    (fun acc x -> if Random.State.bool st then Var.Set.add x acc else acc)
    Var.Set.empty vars
