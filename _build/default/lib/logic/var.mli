(** Propositional variables.

    Variables are interned: the same name always yields the same variable,
    and every variable has a printable name.  Fresh (gensym) variables get
    unique names and are used for Tseitin encodings, the [W] letters of
    [EXA(k,X,Y,W)], the [Y]/[Z] copies of an alphabet, etc. *)

type t = private int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val named : string -> t
(** Intern a name.  [named "a" = named "a"]. *)

val fresh : ?prefix:string -> unit -> t
(** A brand-new variable whose name does not collide with any interned or
    previously generated name.  Default prefix is ["_w"]. *)

val copy_of : suffix:string -> t -> t
(** [copy_of ~suffix v] interns [name v ^ suffix]: used to build the primed
    alphabets Y, Z, ... that the paper's constructions introduce. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
val to_int : t -> int
val count : unit -> int
(** Number of variables interned so far (a global, monotone counter). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
(** Print a set of variables as [{a, b, c}] (the paper's notation for
    interpretations). *)
