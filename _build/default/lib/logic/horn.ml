let is_horn_clause clause =
  List.length (List.filter (fun (sign, _) -> sign) clause) <= 1

let is_horn cnf = List.for_all is_horn_clause cnf

let closed_under_intersection models =
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          let i = Var.Set.inter a b in
          List.exists (Var.Set.equal i) models)
        models)
    models

let intersection_closure models =
  let module S = Set.Make (struct
    type t = Var.Set.t

    let compare = Var.Set.compare
  end) in
  let rec grow s =
    let extra =
      S.fold
        (fun a acc ->
          S.fold
            (fun b acc ->
              let i = Var.Set.inter a b in
              if S.mem i s then acc else S.add i acc)
            s acc)
        s S.empty
    in
    if S.is_empty extra then s else grow (S.union s extra)
  in
  S.elements (grow (S.of_list models))

let lub_models alphabet f =
  intersection_closure (Models.enumerate alphabet f)

let lub alphabet f =
  let closure = lub_models alphabet f in
  let in_closure m = List.exists (Var.Set.equal m) closure in
  let clauses = ref [] in
  List.iter
    (fun m ->
      if not (in_closure m) then begin
        (* closure models above m (letter-wise) *)
        let above = List.filter (fun c -> Var.Set.subset m c) closure in
        let body =
          List.map (fun x -> (false, x)) (Var.Set.elements m)
        in
        let clause =
          match above with
          | [] -> body (* no model above m: all-negative clause *)
          | _ ->
              let meet =
                List.fold_left Var.Set.inter (List.hd above) (List.tl above)
              in
              (* meet is in the closure and strictly contains m *)
              let head = Var.Set.choose (Var.Set.diff meet m) in
              (true, head) :: body
        in
        clauses := List.sort_uniq compare clause :: !clauses
      end)
    (Interp.subsets alphabet);
  let clauses = List.sort_uniq compare !clauses in
  (* Greedy redundancy elimination: drop clauses whose removal keeps the
     model set equal to the closure. *)
  let models_of cnf =
    List.filter
      (fun m ->
        List.for_all
          (fun c -> List.exists (fun (s, x) -> Var.Set.mem x m = s) c)
          cnf)
      (Interp.subsets alphabet)
  in
  let closure_sorted = List.sort_uniq Var.Set.compare closure in
  let equals_closure cnf =
    let ms = models_of cnf in
    List.length ms = List.length closure_sorted
    && List.for_all2 Var.Set.equal ms closure_sorted
  in
  let rec prune kept = function
    | [] -> List.rev kept
    | c :: rest ->
        if equals_closure (List.rev_append kept rest) then prune kept rest
        else prune (c :: kept) rest
  in
  prune [] clauses

let lub_size alphabet f =
  List.fold_left (fun acc c -> acc + List.length c) 0 (lub alphabet f)
