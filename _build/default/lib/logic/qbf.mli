(** Quantified boolean formulas with quantifier expansion.

    Section 6 of the paper writes the bounded-iterated compact
    representations (formulas (12)-(16)) as QBFs over constant-size
    quantified blocks and then appeals to Theorem 6.3: replacing each
    quantifier block by the conjunction (for [Forall]) or disjunction (for
    [Exists]) over all assignments to the block yields an equivalent
    propositional formula with at most quadratic blowup per block.  This
    module implements exactly that expansion. *)

type t =
  | Prop of Formula.t
  | Forall of Var.t list * t
  | Exists of Var.t list * t
  | Conj of t list

val prop : Formula.t -> t
val forall : Var.t list -> t -> t
(** [forall [] t = t]. *)

val exists : Var.t list -> t -> t
val conj : t list -> t

val free_vars : t -> Var.Set.t

val expand : t -> Formula.t
(** Quantifier elimination by assignment expansion.  Exponential in each
    block's width — the paper only ever expands constant-width blocks
    ([|V(P)| <= k]).  Blocks wider than 20 raise [Invalid_argument]. *)

val pp : Format.formatter -> t -> unit
