(* Revision operators: the paper's worked examples, the Figure 1
   containment lattice, Proposition 2.1, formula-based worlds/WIDTIO/
   Nebel, iterated revision, and the KM postulate split. *)

open Logic
open Revision
open Helpers

let vars4 = letters 4
let vars5 = letters 5

(* Pairs of satisfiable formulas over vars4. *)
let arb_tp =
  QCheck.make
    ~print:(fun (t, p) ->
      Printf.sprintf "T=%s P=%s" (Formula.to_string t) (Formula.to_string p))
    (fun st ->
      let rec sat_f () =
        let g = Gen.formula st ~vars:vars4 ~depth:3 in
        if Semantics.is_sat g then g else sat_f ()
      in
      (sat_f (), sat_f ()))

let revise_models op t p =
  Result.models (Model_based.revise_on op vars4 t p)

(* -- the Section 2.2.2 worked example ------------------------------------- *)

let paper_t = f "a & b & c"
let paper_p = f "(~a & ~b & ~d) | (~c & b & (a != d))"
let paper_alpha = List.map Var.named [ "a"; "b"; "c"; "d" ]

let paper_example op expected () =
  check_result_models
    (Model_based.name op)
    (Model_based.revise_on op paper_alpha paper_t paper_p)
    expected

(* -- the Section 4.2 example ------------------------------------------------ *)

let paper2_t = f "a & b & c & d & e"
let paper2_p = f "~a | ~b"

let paper2_example op expected () =
  check_result_models
    (Model_based.name op)
    (Model_based.revise op paper2_t paper2_p)
    expected

(* -- Figure 1 containments --------------------------------------------------- *)

let containment (small, large) =
  qtest
    (Printf.sprintf "M(T *%s P) ⊆ M(T *%s P)" (Model_based.name small)
       (Model_based.name large))
    ~count:200 arb_tp
    (fun (t, p) ->
      models_subset (revise_models small t p) (revise_models large t p))

let figure1_tests =
  List.map containment
    [
      (Model_based.Dalal, Model_based.Forbus);
      (Model_based.Dalal, Model_based.Satoh);
      (Model_based.Dalal, Model_based.Winslett);
      (Model_based.Dalal, Model_based.Borgida);
      (Model_based.Dalal, Model_based.Weber);
      (Model_based.Forbus, Model_based.Winslett);
      (Model_based.Satoh, Model_based.Winslett);
      (Model_based.Satoh, Model_based.Borgida);
      (Model_based.Satoh, Model_based.Weber);
      (Model_based.Borgida, Model_based.Winslett);
    ]

(* Strictness: each non-containment must have a witness.  Fixed witnesses
   derived from the paper's example. *)
let test_containments_strict () =
  (* Weber ⊄ Winslett on the paper's example (Weber has model ∅). *)
  let web =
    Result.models
      (Model_based.revise_on Model_based.Weber paper_alpha paper_t paper_p)
  in
  let win =
    Result.models
      (Model_based.revise_on Model_based.Winslett paper_alpha paper_t paper_p)
  in
  check_bool "Weber not within Winslett here" false (models_subset web win);
  (* Winslett ⊄ Forbus on the paper's example (N3 = {b,d}). *)
  let forb =
    Result.models
      (Model_based.revise_on Model_based.Forbus paper_alpha paper_t paper_p)
  in
  check_bool "Winslett not within Forbus here" false (models_subset win forb)

(* -- Proposition 2.1 ----------------------------------------------------------

   As printed, the proposition claims that for every model M of T there is
   a model N of T * P with M Δ N ⊆ V(P).  That literal statement holds for
   the pointwise operators (Winslett, Forbus), whose selected set contains
   a closest model for *every* M; for the global operators (and Borgida's
   consistent case) a far-away M may contribute nothing to the revised set
   (e.g. T = (a∧b)∨(¬a∧¬b), P = b, M = ∅ under Dalal).  What every proof in
   the paper actually uses — and what holds for all six operators — is that
   every inclusion-minimal difference µ(M, P) is contained in V(P). *)

let prop_2_1_minimal_diffs =
  qtest "prop 2.1: minimal differences within V(P)" ~count:200 arb_tp
    (fun (t, p) ->
      let t_models = Models.enumerate vars4 t in
      let p_models = Models.enumerate vars4 p in
      let vp = Formula.vars p in
      p_models = []
      || List.for_all
           (fun m ->
             List.for_all
               (fun d -> Var.Set.subset d vp)
               (Distance.mu m p_models))
           t_models)

let prop_2_1 op =
  qtest
    (Printf.sprintf "prop 2.1 literal (%s)" (Model_based.name op))
    ~count:150 arb_tp
    (fun (t, p) ->
      let t_models = Models.enumerate vars4 t in
      let revised = revise_models op t p in
      let vp = Formula.vars p in
      revised = []
      || List.for_all
           (fun m ->
             List.exists
               (fun n -> Var.Set.subset (Interp.sym_diff m n) vp)
               revised)
           t_models)

(* -- revision identity (T ∧ P consistent) -------------------------------------- *)

let revision_identity op =
  qtest
    (Printf.sprintf "%s: T*P = T∧P when consistent" (Model_based.name op))
    ~count:200 arb_tp
    (fun (t, p) ->
      let tp = Formula.conj2 t p in
      (not (Semantics.is_sat tp))
      || same_models (revise_models op t p) (Models.enumerate vars4 tp))

(* Winslett and Forbus are UPDATE operators: identity must fail somewhere. *)
let test_update_ops_violate_identity () =
  (* T = a | b (incomplete), P = a: Winslett updates each model separately:
     model {b} moves to closest a-models: {a,b}.  So T ◇ P has models
     {a}, {a,b} — but T ∧ P has models {a}, {a,b} too... choose sharper:
     T = ~a | ~b? Use the classic: T = (a & b) | (~a & ~b), P = a.
     T∧P = {a,b}.  Winslett: model {a,b} -> {a,b}; model {} -> closest
     a-model: {a}.  So winslett gives {a,b},{a} ≠ T∧P. *)
  let t = f "(a & b) | (~a & ~b)" and p = f "a" in
  let alpha = [ Var.named "a"; Var.named "b" ] in
  let win = Result.models (Model_based.revise_on Model_based.Winslett alpha t p) in
  let tp = Models.enumerate alpha (Formula.conj2 t p) in
  check_bool "winslett differs from T∧P" false (same_models win tp);
  let forb = Result.models (Model_based.revise_on Model_based.Forbus alpha t p) in
  check_bool "forbus differs from T∧P" false (same_models forb tp)

(* Repetition is absorbed: (T * P) * P = T * P for every operator (for
   the revision operators via R2; for the update operators via U2, since
   T * P |= P). *)
let repetition_absorbed op =
  qtest
    (Printf.sprintf "%s: (T*P)*P = T*P" (Model_based.name op))
    ~count:100 arb_tp
    (fun (t, p) ->
      let once = revise_models op t p in
      let p_models = Models.enumerate vars4 p in
      let twice = Model_based.select op once p_models in
      same_models once twice)

let prop_borgida_is_winslett_when_inconsistent =
  qtest "borgida = winslett on inconsistent T∧P" ~count:200 arb_tp
    (fun (t, p) ->
      Semantics.is_sat (Formula.conj2 t p)
      || same_models
           (revise_models Model_based.Borgida t p)
           (revise_models Model_based.Winslett t p))

let prop_borgida_is_conj_when_consistent =
  qtest "borgida = T∧P on consistent T∧P" ~count:200 arb_tp (fun (t, p) ->
      (not (Semantics.is_sat (Formula.conj2 t p)))
      || same_models
           (revise_models Model_based.Borgida t p)
           (Models.enumerate vars4 (Formula.conj2 t p)))

(* -- degenerate cases ----------------------------------------------------------- *)

let test_unsat_p () =
  List.iter
    (fun op ->
      let r = Model_based.revise_on op vars4 (f "x1") (f "x2 & ~x2") in
      check_bool (Model_based.name op ^ ": P unsat -> inconsistent") true
        (Result.is_inconsistent r))
    Model_based.all

let test_unsat_t () =
  List.iter
    (fun op ->
      let r = Model_based.revise_on op vars4 (f "x1 & ~x1") (f "x2") in
      check_bool (Model_based.name op ^ ": T unsat -> P") true
        (same_models (Result.models r) (Models.enumerate vars4 (f "x2"))))
    Model_based.all

(* -- formula-based: worlds, GFUV, WIDTIO, Nebel ---------------------------------- *)

let test_worlds_paper_example () =
  (* T1 = {a, b}, T2 = {a, a -> b}, P = ~b (Section 2.2.1). *)
  let t1 = Theory.of_string "a; b" and t2 = Theory.of_string "a; a -> b" in
  let p = f "~b" in
  check_int "W(T1,P)" 1 (List.length (Formula_based.worlds t1 p));
  check_int "W(T2,P)" 2 (List.length (Formula_based.worlds t2 p));
  check_formula_equiv "T1 * P" (f "a & ~b") (Formula_based.gfuv_formula t1 p);
  check_formula_equiv "T2 * P" (f "~b") (Formula_based.gfuv_formula t2 p);
  check_formula_equiv "T1 widtio" (f "a & ~b")
    (Theory.conj (Formula_based.widtio t1 p));
  check_formula_equiv "T2 widtio" (f "~b")
    (Theory.conj (Formula_based.widtio t2 p))

let test_worlds_properties () =
  let t = Theory.of_string "x1; x2; x1 -> x3; ~x3" in
  let p = f "~x1 | ~x2" in
  let ws = Formula_based.worlds t p in
  (* every world is consistent with p *)
  List.iter
    (fun w ->
      check_bool "world consistent" true
        (Semantics.is_sat (Formula.conj2 (Theory.conj w) p)))
    ws;
  (* maximality: adding any missing member breaks consistency *)
  List.iter
    (fun w ->
      List.iter
        (fun g ->
          if not (List.exists (Formula.equal g) w) then
            check_bool "maximal" false
              (Semantics.is_sat
                 (Formula.and_ [ Theory.conj w; g; p ])))
        t)
    ws;
  (* worlds are distinct *)
  let distinct =
    List.length ws
    = List.length (List.sort_uniq compare ws)
  in
  check_bool "distinct worlds" true distinct

let test_worlds_consistent_theory () =
  let t = Theory.of_string "x1; x2" in
  let ws = Formula_based.worlds t (f "x1 & x2") in
  check_int "single world = T" 1 (List.length ws);
  check_int "world has both members" 2 (List.length (List.hd ws))

let test_worlds_unsat_p () =
  check_int "no worlds" 0
    (List.length (Formula_based.worlds (Theory.of_string "x1") (f "x2 & ~x2")))

let test_worlds_cap () =
  let ex = Witness.Nebel_example.make 4 in
  match
    Formula_based.worlds ~cap:3 ex.Witness.Nebel_example.t1
      ex.Witness.Nebel_example.p1
  with
  | exception Formula_based.Cap_exceeded 3 -> ()
  | ws -> Alcotest.failf "expected cap, got %d worlds" (List.length ws)

let test_widtio_weaker_than_gfuv () =
  (* WIDTIO keeps only the formulas in every world: its result is always
     implied by the GFUV disjunction. *)
  let st = Random.State.make [| 31 |] in
  for _ = 1 to 50 do
    let t = Gen.theory st ~vars:vars4 ~members:4 ~depth:2 in
    let p = Gen.formula st ~vars:vars4 ~depth:2 in
    if Semantics.is_sat p then begin
      let gf = Formula_based.gfuv_formula t p in
      let wt = Theory.conj (Formula_based.widtio t p) in
      check_bool "gfuv entails widtio" true (Semantics.entails gf wt)
    end
  done

let test_gfuv_entails_consistent_with_formula () =
  let st = Random.State.make [| 37 |] in
  for _ = 1 to 40 do
    let t = Gen.theory st ~vars:vars4 ~members:3 ~depth:2 in
    let p = Gen.formula st ~vars:vars4 ~depth:2 in
    let q = Gen.formula st ~vars:vars4 ~depth:2 in
    if Semantics.is_sat p then
      check_bool "entailment agrees with naive formula" true
        (Formula_based.gfuv_entails t p q
        = Semantics.entails (Formula_based.gfuv_formula t p) q)
  done

let test_nebel_priorities () =
  (* High class {a} survives against low class {~a (as b->~a), b}:
     priorities make {a} immune. *)
  let high = Theory.of_string "a" in
  let low = Theory.of_string "~a; b" in
  let p = f "true" in
  let ws = Formula_based.nebel_worlds ~priorities:[ high; low ] p in
  check_int "one world" 1 (List.length ws);
  check_formula_equiv "a wins" (f "a & b")
    (Theory.conj (List.hd ws));
  (* single class = GFUV *)
  let t = Theory.of_string "a; ~a; b" in
  let single = Formula_based.nebel_worlds ~priorities:[ t ] (f "true") in
  let plain = Formula_based.worlds t (f "true") in
  check_int "single class = worlds" (List.length plain) (List.length single)

let test_syntax_sensitivity () =
  (* Logically equivalent theories, different revisions: the hallmark of
     formula-based operators. *)
  let t1 = Theory.of_string "a; b" and t2 = Theory.of_string "a; a -> b" in
  let p = f "~b" in
  check_bool "equivalent presentations" true
    (Semantics.equiv (Theory.conj t1) (Theory.conj t2));
  check_bool "different GFUV results" false
    (Semantics.equiv
       (Formula_based.gfuv_formula t1 p)
       (Formula_based.gfuv_formula t2 p));
  (* model-based operators are syntax-irrelevant *)
  List.iter
    (fun op ->
      check_bool
        (Model_based.name op ^ " irrelevant to syntax")
        true
        (same_models
           (Result.models (Model_based.revise op (Theory.conj t1) p))
           (Result.models (Model_based.revise op (Theory.conj t2) p))))
    Model_based.all

(* -- Operator dispatch ------------------------------------------------------------ *)

let test_operator_roundtrip_names () =
  List.iter
    (fun op ->
      match Operator.of_name (Operator.name op) with
      | Some op' ->
          check_bool "name roundtrip" true
            (Operator.name op = Operator.name op')
      | None -> Alcotest.failf "of_name failed for %s" (Operator.name op))
    Operator.all

let test_operator_entails_consistency () =
  let st = Random.State.make [| 41 |] in
  for _ = 1 to 30 do
    let t = Gen.theory st ~vars:vars4 ~members:3 ~depth:2 in
    let p = Gen.formula st ~vars:vars4 ~depth:2 in
    let q = Gen.formula st ~vars:vars4 ~depth:2 in
    if Semantics.is_sat p && Semantics.is_sat (Theory.conj t) then
      List.iter
        (fun op ->
          let via_result = Result.entails (Operator.revise op t p) q in
          let direct = Operator.entails op t p q in
          check_bool
            (Operator.name op ^ " entails paths agree")
            via_result direct)
        [ Operator.Gfuv; Operator.Widtio; Operator.Dalal; Operator.Winslett ]
  done

let test_partition () =
  Alcotest.(check (list (list int)))
    "partition sizes"
    [ [ 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Operator.partition [ 2; 1 ] [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int)))
    "no sizes -> one class"
    [ [ 1; 2 ] ]
    (Operator.partition [] [ 1; 2 ])

(* -- iterated ----------------------------------------------------------------------- *)

let test_iterate_single_matches_revise () =
  let st = Random.State.make [| 43 |] in
  for _ = 1 to 40 do
    let t = Gen.formula st ~vars:vars4 ~depth:3 in
    let p = Gen.formula st ~vars:vars4 ~depth:3 in
    if Semantics.is_sat t && Semantics.is_sat p then
      List.iter
        (fun (op, mop) ->
          let single =
            Result.models (Model_based.revise_on mop vars4 t p)
          in
          let seq = Result.models (Iterate.revise_seq_on op vars4 [ t ] [ p ]) in
          check_bool "iterate m=1 = revise" true (same_models single seq))
        [
          (Operator.Dalal, Model_based.Dalal);
          (Operator.Winslett, Model_based.Winslett);
          (Operator.Weber, Model_based.Weber);
        ]
  done

let test_iterate_gfuv_rejected () =
  match Iterate.revise_seq Operator.Gfuv [ f "a" ] [ f "b" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "GFUV iteration should be rejected"

let test_iterate_empty_sequence () =
  let r = Iterate.revise_seq Operator.Dalal [ f "a & b" ] [] in
  check_bool "no revisions = T" true
    (same_models (Result.models r)
       (Models.enumerate (Result.alphabet r) (f "a & b")))

let test_iterate_dalal_chain () =
  (* a & b  *D ~a  *D ~b  -> single model {} *)
  let r = Iterate.revise_seq Operator.Dalal [ f "a & b" ] [ f "~a"; f "~b" ] in
  check_result_models "chain" r [ "" ]

let test_widtio_seq () =
  let t = Theory.of_string "a; b" in
  let t' = Iterate.widtio_seq t [ f "~a"; f "~b" ] in
  check_formula_equiv "widtio chain" (f "~a & ~b" ) (Theory.conj t')

let test_weber_can_coincide_with_p () =
  (* In the paper's worked example, Weber's revision coincides with P. *)
  let r = Model_based.revise_on Model_based.Weber paper_alpha paper_t paper_p in
  check_bool "Weber = P here" true
    (same_models (Result.models r) (Models.enumerate paper_alpha paper_p))

let test_distance_guards () =
  (match Distance.k_pointwise Var.Set.empty [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k_pointwise on empty");
  match Distance.k_global [] [ Var.Set.empty ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k_global on empty"

let test_widtio_members_come_from_t () =
  let st = Random.State.make [| 83 |] in
  for _ = 1 to 40 do
    let t = Gen.theory st ~vars:vars4 ~members:4 ~depth:2 in
    let p = Gen.formula st ~vars:vars4 ~depth:2 in
    if Semantics.is_sat p then begin
      let w = Formula_based.widtio t p in
      (* every member except the final P comes from T *)
      let rec all_but_last = function
        | [] | [ _ ] -> []
        | x :: rest -> x :: all_but_last rest
      in
      List.iter
        (fun g ->
          check_bool "member from T" true
            (List.exists (Formula.equal g) t))
        (all_but_last w)
    end
  done

(* -- Result ------------------------------------------------------------------------ *)

let test_result_api () =
  let r = Result.make vars4 [ interp_of_string "x1"; interp_of_string "x1" ] in
  check_int "dedup" 1 (Result.model_count r);
  check_bool "entails x1" true (Result.entails r (f "x1"));
  check_bool "not entails x2" false (Result.entails r (f "x2"));
  check_bool "model_check" true (Result.model_check r (interp_of_string "x1"));
  check_bool "model_check negative" false
    (Result.model_check r (interp_of_string "x2"));
  check_formula_equiv "dnf" (f "x1 & ~x2 & ~x3 & ~x4") (Result.to_dnf r);
  check_bool "minimized equivalent" true
    (Semantics.equiv (Result.to_dnf r) (Result.to_minimized_dnf r))

(* -- Section 7: generic data structures ----------------------------------------------- *)

let prop_structures_agree =
  qtest "formula/BDD/model-list structures agree" ~count:150
    (Helpers.arb_formula ~depth:3 vars4) (fun fm ->
      let mgr = Bdd.manager vars4 in
      let s_f = Structure.of_formula fm in
      let s_b = Structure.of_bdd mgr (Bdd.of_formula mgr fm) in
      let s_m = Structure.of_models vars4 (Models.enumerate vars4 fm) in
      Structure.agrees_with vars4 s_f s_b
      && Structure.agrees_with vars4 s_f s_m)

let test_structure_represents_revision () =
  let t = f "a & b & c" and p = f "~a | ~b" in
  let sem = Model_based.revise Model_based.Dalal t p in
  let alphabet = Result.alphabet sem in
  let s_m = Structure.of_models alphabet (Result.models sem) in
  check_bool "model-list represents T*P" true (Structure.represents s_m sem);
  let s_f = Structure.of_formula (Result.to_dnf sem) in
  check_bool "naive formula represents T*P" true (Structure.represents s_f sem);
  let s_bad = Structure.of_formula p in
  check_bool "P alone does not" false (Structure.represents s_bad sem)

let prop_bdd_eval =
  qtest "Bdd.eval = Interp.sat" ~count:200 (Helpers.arb_formula ~depth:4 vars4)
    (fun fm ->
      let mgr = Bdd.manager vars4 in
      let node = Bdd.of_formula mgr fm in
      List.for_all
        (fun m -> Bdd.eval mgr node m = Interp.sat m fm)
        (Interp.subsets vars4))

(* -- KM postulates ------------------------------------------------------------------- *)

let test_dalal_satisfies_revision_postulates () =
  let st = Random.State.make [| 47 |] in
  for _ = 1 to 60 do
    let t = Gen.formula st ~vars:vars4 ~depth:3 in
    let p = Gen.formula st ~vars:vars4 ~depth:3 in
    let q = Gen.formula st ~vars:vars4 ~depth:2 in
    if Semantics.is_sat t && Semantics.is_sat p then
      List.iter
        (fun c ->
          if not c.Postulates.holds then
            Alcotest.failf "Dalal violates %s on T=%a P=%a Q=%a"
              c.Postulates.name Formula.pp t Formula.pp p Formula.pp q)
        (Postulates.revision_postulates Model_based.Dalal vars4 ~t ~p ~q)
  done

let test_winslett_satisfies_update_postulates () =
  let st = Random.State.make [| 53 |] in
  for _ = 1 to 40 do
    let t = Gen.formula st ~vars:vars4 ~depth:2 in
    let t2 = Gen.formula st ~vars:vars4 ~depth:2 in
    let p = Gen.formula st ~vars:vars4 ~depth:2 in
    let p2 = Gen.formula st ~vars:vars4 ~depth:2 in
    if
      Semantics.is_sat t && Semantics.is_sat t2 && Semantics.is_sat p
      && Semantics.is_sat p2
    then
      List.iter
        (fun c ->
          if not c.Postulates.holds then
            Alcotest.failf "Winslett violates %s on T=%a T2=%a P=%a P2=%a"
              c.Postulates.name Formula.pp t Formula.pp t2 Formula.pp p
              Formula.pp p2)
        (Postulates.update_postulates Model_based.Winslett vars4 ~t ~t2 ~p ~p2)
  done

let test_winslett_violates_r2 () =
  (* The update/revision split: Winslett fails R2 on the classic
     instance. *)
  let t = f "(a & b) | (~a & ~b)" and p = f "a" in
  let alpha = [ Var.named "a"; Var.named "b" ] in
  let checks =
    Postulates.revision_postulates Model_based.Winslett alpha ~t ~p
      ~q:Formula.top
  in
  let r2 = List.find (fun c -> c.Postulates.name = "R2") checks in
  check_bool "R2 fails for Winslett" false r2.Postulates.holds

let test_dalal_violates_u8 () =
  (* Dalal is revision, not update: U8 fails somewhere.  Classic:
     T1 = a&b, T2 = ~a&~b, P = a != b.  Dalal((T1∨T2), P) computes a
     global minimum that loses T2's contribution?  Search a witness
     randomly instead to stay robust. *)
  let st = Random.State.make [| 59 |] in
  let found = ref false in
  (try
     for _ = 1 to 400 do
       let t = Gen.formula st ~vars:vars4 ~depth:2 in
       let t2 = Gen.formula st ~vars:vars4 ~depth:2 in
       let p = Gen.formula st ~vars:vars4 ~depth:2 in
       if Semantics.is_sat t && Semantics.is_sat t2 && Semantics.is_sat p
       then begin
         let checks =
           Postulates.update_postulates Model_based.Dalal vars4 ~t ~t2 ~p
             ~p2:Formula.top
         in
         let u8 = List.find (fun c -> c.Postulates.name = "U8") checks in
         if not u8.Postulates.holds then begin
           found := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  check_bool "U8 fails for Dalal somewhere" true !found

let () =
  Alcotest.run "revision"
    [
      ( "paper worked example (2.2.2)",
        [
          Alcotest.test_case "winslett" `Quick
            (paper_example Model_based.Winslett [ "a,b"; "c"; "b,d" ]);
          Alcotest.test_case "borgida" `Quick
            (paper_example Model_based.Borgida [ "a,b"; "c"; "b,d" ]);
          Alcotest.test_case "forbus" `Quick
            (paper_example Model_based.Forbus [ "a,b"; "b,d" ]);
          Alcotest.test_case "satoh" `Quick
            (paper_example Model_based.Satoh [ "a,b"; "c" ]);
          Alcotest.test_case "dalal" `Quick
            (paper_example Model_based.Dalal [ "a,b" ]);
          Alcotest.test_case "weber" `Quick
            (paper_example Model_based.Weber [ "a,b"; "c"; "b,d"; "" ]);
        ] );
      ( "paper worked example (4.2)",
        [
          Alcotest.test_case "satoh" `Quick
            (paper2_example Model_based.Satoh [ "b,c,d,e"; "a,c,d,e" ]);
          Alcotest.test_case "dalal" `Quick
            (paper2_example Model_based.Dalal [ "b,c,d,e"; "a,c,d,e" ]);
          Alcotest.test_case "forbus" `Quick
            (paper2_example Model_based.Forbus [ "b,c,d,e"; "a,c,d,e" ]);
          Alcotest.test_case "weber" `Quick
            (paper2_example Model_based.Weber
               [ "b,c,d,e"; "a,c,d,e"; "c,d,e" ]);
        ] );
      ( "figure 1 containments",
        figure1_tests
        @ [
            Alcotest.test_case "strictness witnesses" `Quick
              test_containments_strict;
          ] );
      ( "proposition 2.1",
        [
          prop_2_1_minimal_diffs;
          prop_2_1 Model_based.Winslett;
          prop_2_1 Model_based.Forbus;
        ] );
      ( "revision identity",
        [
          revision_identity Model_based.Dalal;
          revision_identity Model_based.Satoh;
          revision_identity Model_based.Borgida;
          revision_identity Model_based.Weber;
          Alcotest.test_case "update ops violate identity" `Quick
            test_update_ops_violate_identity;
          prop_borgida_is_winslett_when_inconsistent;
          prop_borgida_is_conj_when_consistent;
        ] );
      ( "repetition absorbed",
        List.map repetition_absorbed Model_based.all );
      ( "degenerate cases",
        [
          Alcotest.test_case "P unsat" `Quick test_unsat_p;
          Alcotest.test_case "T unsat" `Quick test_unsat_t;
        ] );
      ( "formula-based",
        [
          Alcotest.test_case "paper example worlds" `Quick
            test_worlds_paper_example;
          Alcotest.test_case "worlds properties" `Quick test_worlds_properties;
          Alcotest.test_case "consistent theory" `Quick
            test_worlds_consistent_theory;
          Alcotest.test_case "unsat P" `Quick test_worlds_unsat_p;
          Alcotest.test_case "cap is loud" `Quick test_worlds_cap;
          Alcotest.test_case "widtio weaker than gfuv" `Quick
            test_widtio_weaker_than_gfuv;
          Alcotest.test_case "gfuv entailment = naive formula" `Quick
            test_gfuv_entails_consistent_with_formula;
          Alcotest.test_case "nebel priorities" `Quick test_nebel_priorities;
          Alcotest.test_case "syntax sensitivity" `Quick
            test_syntax_sensitivity;
        ] );
      ( "operator dispatch",
        [
          Alcotest.test_case "names roundtrip" `Quick
            test_operator_roundtrip_names;
          Alcotest.test_case "entails paths agree" `Quick
            test_operator_entails_consistency;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "iterated",
        [
          Alcotest.test_case "m=1 = single" `Quick
            test_iterate_single_matches_revise;
          Alcotest.test_case "gfuv rejected" `Quick test_iterate_gfuv_rejected;
          Alcotest.test_case "empty sequence" `Quick
            test_iterate_empty_sequence;
          Alcotest.test_case "dalal chain" `Quick test_iterate_dalal_chain;
          Alcotest.test_case "widtio chain" `Quick test_widtio_seq;
        ] );
      ( "misc",
        [
          Alcotest.test_case "weber = P on the worked example" `Quick
            test_weber_can_coincide_with_p;
          Alcotest.test_case "distance guards" `Quick test_distance_guards;
          Alcotest.test_case "widtio members from T" `Quick
            test_widtio_members_come_from_t;
        ] );
      ("result", [ Alcotest.test_case "api" `Quick test_result_api ]);
      ( "section 7 structures",
        [
          prop_structures_agree;
          Alcotest.test_case "represents a revision" `Quick
            test_structure_represents_revision;
          prop_bdd_eval;
        ] );
      ( "km postulates",
        [
          Alcotest.test_case "dalal satisfies R1-R6" `Quick
            test_dalal_satisfies_revision_postulates;
          Alcotest.test_case "winslett satisfies U1-U8" `Quick
            test_winslett_satisfies_update_postulates;
          Alcotest.test_case "winslett fails R2" `Quick
            test_winslett_violates_r2;
          Alcotest.test_case "dalal fails U8" `Quick test_dalal_violates_u8;
        ] );
    ]

let _ = vars5
