test/helpers.ml: Alcotest Format Formula Gen Interp List Logic Parser QCheck QCheck_alcotest Revision Semantics String Var
