test/test_semantics.ml: Alcotest Cnf Formula Hamming Helpers List Logic Models Qbf Satsolver Semantics Var
