test/test_formula.ml: Alcotest Formula Helpers Interp List Logic Models Parser String Theory Var
