test/test_compact.mli:
