test/test_sat.ml: Alcotest Array Format Helpers List Option Printf Random Satsolver
