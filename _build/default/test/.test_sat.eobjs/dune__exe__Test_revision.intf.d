test/test_revision.mli:
