test/test_witness.ml: Alcotest Compact Formula Helpers List Logic Printf Random Revision Theory Var Witness
