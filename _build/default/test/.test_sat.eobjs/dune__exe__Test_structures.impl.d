test/test_structures.ml: Alcotest Bdd Cnf Formula Gen Hamming Helpers Horn Interp List Logic Models Qmc Semantics Var
