test/test_compact.ml: Alcotest Compact Distance Format Formula Gen Helpers Interp Iterate List Logic Model_based Models Operator Printf QCheck Qbf Random Result Revision Semantics Theory Var
