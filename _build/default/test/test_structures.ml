(* Data-structure substrate: interpretations (minc/maxc), the EXA
   counting formula, QMC minimization, and the ROBDD package. *)

open Logic
open Helpers

let vars4 = letters 4

(* -- Interp ----------------------------------------------------------------- *)

let test_sym_diff () =
  let m = interp_of_string "a,b" and n = interp_of_string "b,c" in
  check_bool "a,c" true
    (Var.Set.equal (Interp.sym_diff m n) (interp_of_string "a,c"));
  check_int "hamming" 2 (Interp.hamming m n);
  check_bool "neutral element" true
    (Var.Set.equal (Interp.sym_diff m Var.Set.empty) m)

let test_min_max_incl () =
  let sets =
    List.map interp_of_string [ "a"; "a,b"; "c"; "a,c"; "b,c"; "a,b,c" ]
  in
  let mins = Interp.min_incl sets in
  check_int "two minimal" 2 (List.length mins);
  check_bool "a minimal" true
    (List.exists (Var.Set.equal (interp_of_string "a")) mins);
  check_bool "c minimal" true
    (List.exists (Var.Set.equal (interp_of_string "c")) mins);
  let maxs = Interp.max_incl sets in
  check_int "one maximal" 1 (List.length maxs);
  check_bool "abc maximal" true
    (List.exists (Var.Set.equal (interp_of_string "a,b,c")) maxs)

let test_min_incl_dedups () =
  let sets = List.map interp_of_string [ "a"; "a"; "a,b" ] in
  check_int "dedup" 1 (List.length (Interp.min_incl sets))

let test_subsets_count () =
  check_int "2^4 subsets" 16 (List.length (Interp.subsets vars4));
  check_int "empty alphabet" 1 (List.length (Interp.subsets []))

let test_minterm () =
  let m = interp_of_string "x1,x3" in
  let mt = Interp.minterm vars4 m in
  check_bool "own model" true (Interp.sat m mt);
  check_int "exactly one model" 1 (List.length (Models.enumerate vars4 mt))

(* -- EXA --------------------------------------------------------------------- *)

let exhaustive_exa_check n k =
  let xs = Gen.letters ~prefix:"ex" n and ys = Gen.letters ~prefix:"ey" n in
  let alphabet = xs @ ys in
  let fml, aux = Hamming.exa k xs ys in
  let expected =
    List.filter
      (fun m ->
        let d =
          List.fold_left2
            (fun acc x y ->
              if Var.Set.mem x m <> Var.Set.mem y m then acc + 1 else acc)
            0 xs ys
        in
        d = k)
      (Interp.subsets alphabet)
  in
  let got = Semantics.models_sat alphabet fml in
  if not (same_models got expected) then
    Alcotest.failf "EXA(%d) over %d letters: %d models, expected %d" k n
      (List.length got) (List.length expected);
  (* auxiliaries must be fresh *)
  List.iter
    (fun w ->
      if List.mem w alphabet then Alcotest.fail "aux letter not fresh")
    aux

let test_exa_exhaustive () =
  for n = 0 to 4 do
    for k = 0 to n + 1 do
      exhaustive_exa_check n k
    done
  done

let test_exa_size_polynomial () =
  (* size of EXA(k, X, Y, W) should grow ~ n * k, definitely not 2^n *)
  let size n k =
    let xs = Gen.letters ~prefix:"px" n and ys = Gen.letters ~prefix:"py" n in
    Formula.size (fst (Hamming.exa k xs ys))
  in
  let s10 = size 10 5 and s20 = size 20 10 in
  check_bool "roughly quadratic growth" true
    (s20 < 8 * s10 && s20 > 2 * s10)

let test_exa_direct_agrees () =
  for n = 1 to 4 do
    for k = 0 to n do
      let xs = Gen.letters ~prefix:"dx" n and ys = Gen.letters ~prefix:"dy" n in
      let alphabet = xs @ ys in
      let direct = Hamming.exa_direct k xs ys in
      let laddered, _ = Hamming.exa k xs ys in
      if
        not
          (same_models
             (Models.enumerate alphabet direct)
             (Semantics.models_sat alphabet laddered))
      then Alcotest.failf "exa_direct vs exa disagree at n=%d k=%d" n k
    done
  done

let test_dist_le_direct () =
  let xs = Gen.letters ~prefix:"lx" 3 and ys = Gen.letters ~prefix:"ly" 3 in
  let alphabet = xs @ ys in
  let fml = Hamming.dist_le_direct 1 xs ys in
  let count =
    List.length
      (List.filter
         (fun m ->
           let d =
             List.fold_left2
               (fun acc x y ->
                 if Var.Set.mem x m <> Var.Set.mem y m then acc + 1 else acc)
               0 xs ys
           in
           d <= 1)
         (Interp.subsets alphabet))
  in
  check_int "dist<=1 count" count (List.length (Models.enumerate alphabet fml))

let test_dist_lt_direct () =
  let a = Gen.letters ~prefix:"qa" 2
  and b = Gen.letters ~prefix:"qb" 2
  and c = Gen.letters ~prefix:"qc" 2
  and d = Gen.letters ~prefix:"qd" 2 in
  let alphabet = a @ b @ c @ d in
  let fml = Hamming.dist_lt_direct (a, b) (c, d) in
  let dist xs ys m =
    List.fold_left2
      (fun acc x y -> if Var.Set.mem x m <> Var.Set.mem y m then acc + 1 else acc)
      0 xs ys
  in
  List.iter
    (fun m ->
      let expected = dist a b m < dist c d m in
      if Interp.sat m fml <> expected then
        Alcotest.failf "dist_lt mismatch on %a" Interp.pp m)
    (Interp.subsets alphabet)

let test_exa_totalizer_agrees () =
  for n = 0 to 4 do
    for k = 0 to n + 1 do
      let xs = Gen.letters ~prefix:"totx" n and ys = Gen.letters ~prefix:"toty" n in
      let alphabet = xs @ ys in
      let ladder, _ = Hamming.exa k xs ys in
      let tot, _ = Hamming.exa_totalizer k xs ys in
      if
        not
          (same_models
             (Semantics.models_sat alphabet ladder)
             (Semantics.models_sat alphabet tot))
      then Alcotest.failf "totalizer disagrees with ladder at n=%d k=%d" n k
    done
  done

let test_exa_totalizer_polynomial () =
  let size n k =
    let xs = Gen.letters ~prefix:"tpx" n and ys = Gen.letters ~prefix:"tpy" n in
    Formula.size (fst (Hamming.exa_totalizer k xs ys))
  in
  let s10 = size 10 5 and s20 = size 20 10 in
  check_bool "quadratic-ish growth" true (s20 < 8 * s10)

let test_dist_lt_poly_agrees () =
  for w1 = 0 to 2 do
    for w2 = 0 to 2 do
      if w1 + w2 > 0 then begin
        let a = Gen.letters ~prefix:"pda" w1 and b = Gen.letters ~prefix:"pdb" w1 in
        let c = Gen.letters ~prefix:"pdc" w2 and d = Gen.letters ~prefix:"pdd" w2 in
        let alphabet = a @ b @ c @ d in
        let direct = Hamming.dist_lt_direct (a, b) (c, d) in
        let poly, _ = Hamming.dist_lt (a, b) (c, d) in
        if
          not
            (same_models
               (Models.enumerate alphabet direct)
               (Semantics.models_sat alphabet poly))
        then Alcotest.failf "dist_lt mismatch at widths %d/%d" w1 w2
      end
    done
  done

let test_pointwise_diff_subset () =
  let s1 = Gen.letters ~prefix:"s1_" 2
  and s2 = Gen.letters ~prefix:"s2_" 2
  and s3 = Gen.letters ~prefix:"s3_" 2
  and s4 = Gen.letters ~prefix:"s4_" 2 in
  let alphabet = s1 @ s2 @ s3 @ s4 in
  let fml = Hamming.pointwise_diff_subset s1 s2 s3 s4 in
  let diffset xs ys m =
    List.fold_left2
      (fun (i, acc) x y ->
        (i + 1, if Var.Set.mem x m <> Var.Set.mem y m then i :: acc else acc))
      (0, []) xs ys
    |> snd
  in
  List.iter
    (fun m ->
      let expected =
        List.for_all
          (fun i -> List.mem i (diffset s3 s4 m))
          (diffset s1 s2 m)
      in
      if Interp.sat m fml <> expected then
        Alcotest.failf "pointwise_diff_subset mismatch on %a" Interp.pp m)
    (Interp.subsets alphabet)

(* -- Horn upper bounds -------------------------------------------------------- *)

let prop_horn_lub_sound =
  qtest "Horn LUB: closed, Horn, implied" ~count:200
    (arb_formula ~depth:3 vars4) (fun fm ->
      let closure = Horn.lub_models vars4 fm in
      let cnf = Horn.lub vars4 fm in
      Horn.closed_under_intersection closure
      && Horn.is_horn cnf
      && Models.entails_on vars4 fm (Cnf.to_formula cnf)
      && same_models (Models.enumerate vars4 (Cnf.to_formula cnf)) closure)

let prop_horn_lub_least =
  (* Leastness: the LUB entails every Horn clause implied by fm. *)
  qtest "Horn LUB: strongest Horn consequence" ~count:100
    (arb_formula ~depth:3 vars4) (fun fm ->
      let lub = Cnf.to_formula (Horn.lub vars4 fm) in
      (* check against all Horn clauses of width <= 2 over vars4 *)
      let clauses =
        List.concat_map
          (fun x ->
            List.concat_map
              (fun y ->
                [
                  [ (false, x) ];
                  [ (true, x) ];
                  [ (false, x); (false, y) ];
                  [ (false, x); (true, y) ];
                ])
              vars4)
          vars4
      in
      List.for_all
        (fun c ->
          let cf = Cnf.to_formula [ c ] in
          (not (Models.entails_on vars4 fm cf))
          || Models.entails_on vars4 lub cf)
        clauses)

let test_horn_on_horn_input =
  Alcotest.test_case "Horn input is its own LUB" `Quick (fun () ->
      let fm = f "(x1 -> x2) & (x1 & x2 -> x3) & ~x4" in
      let closure = Horn.lub_models vars4 fm in
      check_bool "same models" true
        (same_models closure (Models.enumerate vars4 fm)))

let test_horn_clause_recognizer =
  Alcotest.test_case "is_horn_clause" `Quick (fun () ->
      let x = Var.named "x1" and y = Var.named "x2" in
      check_bool "negative clause" true (Horn.is_horn_clause [ (false, x); (false, y) ]);
      check_bool "one positive" true (Horn.is_horn_clause [ (false, x); (true, y) ]);
      check_bool "two positives" false (Horn.is_horn_clause [ (true, x); (true, y) ]))

(* -- QMC --------------------------------------------------------------------- *)

let prop_qmc_exact =
  qtest "QMC model-exact" ~count:300 (arb_formula ~depth:4 vars4) (fun fm ->
      let ms = Models.enumerate vars4 fm in
      Models.equivalent_on vars4 fm (Qmc.minimize vars4 ms))

let prop_qmc_never_larger_than_naive =
  qtest "QMC <= naive DNF size" ~count:300 (arb_formula ~depth:4 vars4)
    (fun fm ->
      let ms = Models.enumerate vars4 fm in
      Qmc.minimized_size vars4 ms
      <= Formula.size (Models.dnf_of_models vars4 ms))

let test_qmc_corner_cases () =
  check_bool "no models -> false" true
    (Formula.equal (Qmc.minimize vars4 []) Formula.bot);
  check_bool "all models -> true" true
    (Formula.equal (Qmc.minimize vars4 (Interp.subsets vars4)) Formula.top);
  (* classic: xor cannot be compressed, parity needs 2^(n-1) minterms *)
  let xor2 = f "x1 != x2" in
  let ms = Models.enumerate [ Var.named "x1"; Var.named "x2" ] xor2 in
  check_int "xor minimized size" 4
    (Qmc.minimized_size [ Var.named "x1"; Var.named "x2" ] ms)

let prop_qmc_cnf_exact =
  qtest "QMC CNF model-exact" ~count:300 (arb_formula ~depth:4 vars4)
    (fun fm ->
      let ms = Models.enumerate vars4 fm in
      Models.equivalent_on vars4 fm (Qmc.minimize_cnf vars4 ms))

let test_qmc_cnf_corner_cases () =
  check_bool "all models -> true" true
    (Formula.equal (Qmc.minimize_cnf vars4 (Interp.subsets vars4)) Formula.top);
  check_bool "no models -> false" true
    (Formula.equal (Qmc.minimize_cnf vars4 []) Formula.bot);
  (* CNF shines where DNF is bad: a single clause *)
  let clause = f "x1 | x2 | x3 | x4" in
  let ms = Models.enumerate vars4 clause in
  check_int "clause recovered" 4 (Qmc.minimized_cnf_size vars4 ms)

let test_qmc_known_minimization () =
  (* (a & b) | (a & ~b) minimizes to a *)
  let alphabet = [ Var.named "a"; Var.named "b" ] in
  let ms = Models.enumerate alphabet (f "(a & b) | (a & ~b)") in
  let minimized = Qmc.minimize alphabet ms in
  check_int "single literal" 1 (Formula.size minimized)

(* -- BDD --------------------------------------------------------------------- *)

let prop_bdd_models =
  qtest "BDD models = brute force" ~count:300 (arb_formula ~depth:4 vars4)
    (fun fm ->
      let mgr = Bdd.manager vars4 in
      let node = Bdd.of_formula mgr fm in
      same_models (Bdd.models mgr node) (Models.enumerate vars4 fm))

let prop_bdd_sat_count =
  qtest "BDD sat_count" ~count:300 (arb_formula ~depth:4 vars4) (fun fm ->
      let mgr = Bdd.manager vars4 in
      Bdd.sat_count mgr (Bdd.of_formula mgr fm)
      = List.length (Models.enumerate vars4 fm))

let prop_bdd_canonical =
  qtest "BDD canonicity: equivalent formulas share the node" ~count:200
    (arb_pair (arb_formula vars4) (arb_formula vars4))
    (fun (a, b) ->
      let mgr = Bdd.manager vars4 in
      let na = Bdd.of_formula mgr a and nb = Bdd.of_formula mgr b in
      Bdd.equal na nb = Models.equivalent_on vars4 a b)

let prop_bdd_to_formula_roundtrip =
  qtest "BDD to_formula equivalence" ~count:200 (arb_formula ~depth:4 vars4)
    (fun fm ->
      let mgr = Bdd.manager vars4 in
      Models.equivalent_on vars4 fm
        (Bdd.to_formula mgr (Bdd.of_formula mgr fm)))

let test_bdd_constants () =
  let mgr = Bdd.manager vars4 in
  check_bool "true" true (Bdd.is_true (Bdd.of_formula mgr Formula.top));
  check_bool "false" true (Bdd.is_false (Bdd.of_formula mgr Formula.bot));
  check_int "constant node count" 0
    (Bdd.node_count (Bdd.of_formula mgr Formula.top));
  check_bool "taut collapses" true
    (Bdd.is_true (Bdd.of_formula mgr (f "x1 | ~x1")))

let test_bdd_order_sensitivity () =
  (* (x1&y1)|(x2&y2)|(x3&y3): interleaved order linear, separated order
     exponential — the standard order-sensitivity fact. *)
  let mk names =
    List.map Var.named names
  in
  let fml = f "(u1 & v1) | (u2 & v2) | (u3 & v3)" in
  let good = Bdd.manager (mk [ "u1"; "v1"; "u2"; "v2"; "u3"; "v3" ]) in
  let bad = Bdd.manager (mk [ "u1"; "u2"; "u3"; "v1"; "v2"; "v3" ]) in
  let ng = Bdd.node_count (Bdd.of_formula good fml) in
  let nb = Bdd.node_count (Bdd.of_formula bad fml) in
  check_bool "interleaved smaller" true (ng < nb)

let test_bdd_unknown_var_rejected () =
  let mgr = Bdd.manager [ Var.named "x1" ] in
  match Bdd.of_formula mgr (f "zz_unknown") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "structures"
    [
      ( "interp",
        [
          Alcotest.test_case "sym_diff" `Quick test_sym_diff;
          Alcotest.test_case "minc/maxc" `Quick test_min_max_incl;
          Alcotest.test_case "minc dedups" `Quick test_min_incl_dedups;
          Alcotest.test_case "subsets" `Quick test_subsets_count;
          Alcotest.test_case "minterm" `Quick test_minterm;
        ] );
      ( "exa",
        [
          Alcotest.test_case "exhaustive small" `Quick test_exa_exhaustive;
          Alcotest.test_case "polynomial size" `Quick
            test_exa_size_polynomial;
          Alcotest.test_case "direct variant agrees" `Quick
            test_exa_direct_agrees;
          Alcotest.test_case "dist_le_direct" `Quick test_dist_le_direct;
          Alcotest.test_case "dist_lt_direct" `Quick test_dist_lt_direct;
          Alcotest.test_case "pointwise_diff_subset" `Quick
            test_pointwise_diff_subset;
          Alcotest.test_case "totalizer agrees with ladder" `Quick
            test_exa_totalizer_agrees;
          Alcotest.test_case "dist_lt (polynomial) agrees with direct" `Quick
            test_dist_lt_poly_agrees;
          Alcotest.test_case "totalizer polynomial size" `Quick
            test_exa_totalizer_polynomial;
        ] );
      ( "horn",
        [
          prop_horn_lub_sound;
          prop_horn_lub_least;
          test_horn_on_horn_input;
          test_horn_clause_recognizer;
        ] );
      ( "qmc",
        [
          prop_qmc_exact;
          prop_qmc_never_larger_than_naive;
          Alcotest.test_case "corner cases" `Quick test_qmc_corner_cases;
          prop_qmc_cnf_exact;
          Alcotest.test_case "cnf corner cases" `Quick
            test_qmc_cnf_corner_cases;
          Alcotest.test_case "known minimization" `Quick
            test_qmc_known_minimization;
        ] );
      ( "bdd",
        [
          prop_bdd_models;
          prop_bdd_sat_count;
          prop_bdd_canonical;
          prop_bdd_to_formula_roundtrip;
          Alcotest.test_case "constants" `Quick test_bdd_constants;
          Alcotest.test_case "order sensitivity" `Quick
            test_bdd_order_sensitivity;
          Alcotest.test_case "unknown var rejected" `Quick
            test_bdd_unknown_var_rejected;
        ] );
    ]
