(* Witness families: the reductions behind Theorems 3.1, 3.2, 3.3, 3.6,
   4.1, 6.5, the explosion examples, and the advice-machine pipeline. *)

open Logic
open Helpers

let st = Random.State.make [| 1995 |]

let random_sub_universe ?(max_clauses = 3) () =
  let k = 1 + Random.State.int st max_clauses in
  let idxs =
    List.sort_uniq compare (List.init k (fun _ -> Random.State.int st 8))
  in
  Witness.Threesat.sub_universe 3 idxs

let random_pi u =
  Witness.Threesat.random_instance st u
    ~nclauses:(1 + Random.State.int st (Witness.Threesat.size u))

(* -- Threesat ---------------------------------------------------------------- *)

let test_universe_counts () =
  (* 8 * C(n,3) clauses *)
  check_int "n=3" 8 (Witness.Threesat.size (Witness.Threesat.full_universe 3));
  check_int "n=4" 32 (Witness.Threesat.size (Witness.Threesat.full_universe 4));
  check_int "n=5" 80 (Witness.Threesat.size (Witness.Threesat.full_universe 5))

let test_universe_clauses_distinct () =
  let u = Witness.Threesat.full_universe 4 in
  let cs = Witness.Threesat.clauses u in
  check_int "distinct" (List.length cs)
    (List.length (List.sort_uniq compare cs))

let test_instance_sat () =
  let u = Witness.Threesat.full_universe 3 in
  (* a single clause is always satisfiable *)
  check_bool "single clause sat" true
    (Witness.Threesat.is_satisfiable (Witness.Threesat.instance u [ 0 ]));
  (* the full universe over 3 atoms is unsatisfiable: it contains all 8
     sign patterns of the clause on (b1,b2,b3) *)
  check_bool "full universe unsat" false
    (Witness.Threesat.is_satisfiable
       (Witness.Threesat.instance u (List.init 8 (fun i -> i))))

let test_instance_guards () =
  let u = Witness.Threesat.full_universe 3 in
  (match Witness.Threesat.instance u [ 99 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range");
  match Witness.Threesat.sub_universe 3 [ 1; 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicates"

(* -- Theorem 3.1 --------------------------------------------------------------- *)

let test_thm31_reduction () =
  for _ = 1 to 12 do
    let u = random_sub_universe () in
    let fam = Witness.Gfuv_family.make u in
    let pi = random_pi u in
    if not (Witness.Gfuv_family.reduction_holds fam pi) then
      Alcotest.failf "Theorem 3.1 fails on %a (sat=%b)"
        Witness.Threesat.pp_instance pi
        (Witness.Threesat.is_satisfiable pi)
  done

let test_thm31_sizes_polynomial () =
  (* |T_n| + |P_n| is polynomial in n (Θ(n³) clauses, constant size each). *)
  let size n =
    let fam = Witness.Gfuv_family.make (Witness.Threesat.full_universe n) in
    Theory.size fam.Witness.Gfuv_family.t_n
    + Formula.size fam.Witness.Gfuv_family.p_n
  in
  let s4 = size 4 and s8 = size 8 in
  (* Θ(n³): ratio for n 4→8 should be ≈ 8, certainly < 20 *)
  check_bool "polynomial growth" true (s8 < 20 * s4)

(* -- Theorem 3.2: GFUV = Satoh = Winslett = Weber on this family --------------- *)

let test_thm32_agreement () =
  for _ = 1 to 6 do
    let u = random_sub_universe ~max_clauses:2 () in
    let fam = Witness.Gfuv_family.make u in
    let pi = random_pi u in
    let q = Witness.Gfuv_family.q_pi fam pi in
    let t_conj = Theory.conj fam.Witness.Gfuv_family.t_n in
    let p = fam.Witness.Gfuv_family.p_n in
    let alphabet =
      Var.Set.elements
        (Var.Set.union (Formula.vars t_conj) (Formula.vars p))
    in
    let gfuv = Witness.Gfuv_family.entails_q fam pi in
    List.iter
      (fun op ->
        let r = Revision.Model_based.revise_on op alphabet t_conj p in
        check_bool
          (Revision.Model_based.name op ^ " agrees with GFUV")
          gfuv
          (Revision.Result.entails r q))
      [
        Revision.Model_based.Satoh;
        Revision.Model_based.Winslett;
        Revision.Model_based.Weber;
      ]
  done

(* -- Theorem 4.1 ----------------------------------------------------------------- *)

let test_thm41_reduction () =
  for _ = 1 to 6 do
    let u = random_sub_universe ~max_clauses:2 () in
    let fam = Witness.Gfuv_family.make_bounded u in
    let pi = random_pi u in
    if not (Witness.Gfuv_family.bounded_reduction_holds fam pi) then
      Alcotest.fail "Theorem 4.1 reduction failed"
  done

let test_thm41_p_constant_size () =
  let fam =
    Witness.Gfuv_family.make_bounded (Witness.Threesat.full_universe 3)
  in
  check_int "|P'| = 1" 1 (Formula.size fam.Witness.Gfuv_family.p')

(* -- Theorem 3.3 ------------------------------------------------------------------ *)

let test_thm33_reduction () =
  for _ = 1 to 5 do
    let u = random_sub_universe ~max_clauses:2 () in
    let fam = Witness.Forbus_family.make u in
    let pi = random_pi u in
    if not (Witness.Forbus_family.reduction_holds fam pi) then
      Alcotest.failf "Theorem 3.3 fails on %a (sat=%b)"
        Witness.Threesat.pp_instance pi
        (Witness.Threesat.is_satisfiable pi)
  done

let test_thm33_guard_matrix () =
  let u = Witness.Threesat.sub_universe 3 [ 0; 3 ] in
  let fam = Witness.Forbus_family.make u in
  check_int "n+2 rows" 5 (List.length fam.Witness.Forbus_family.c);
  List.iter
    (fun row -> check_int "row width" 2 (List.length row))
    fam.Witness.Forbus_family.c

let test_thm33_reduction_sat_at_scale () =
  (* |U| = 5 means a 29-letter alphabet — far beyond enumeration; the
     SAT-based model checker carries the reduction. *)
  let u = Witness.Threesat.sub_universe 3 [ 0; 2; 4; 5; 7 ] in
  let fam = Witness.Forbus_family.make u in
  for _ = 1 to 3 do
    let pi = random_pi u in
    if not (Witness.Forbus_family.reduction_holds_sat fam pi) then
      Alcotest.fail "Theorem 3.3 SAT-based reduction failed"
  done

(* -- Theorem 3.6 ------------------------------------------------------------------- *)

let test_thm36_reduction () =
  for _ = 1 to 8 do
    let u = random_sub_universe () in
    let fam = Witness.Dalal_family.make u in
    let pi = random_pi u in
    List.iter
      (fun op ->
        if not (Witness.Dalal_family.reduction_holds op fam pi) then
          Alcotest.failf "Theorem 3.6 fails for %s"
            (Revision.Model_based.name op))
      [ Revision.Model_based.Dalal; Revision.Model_based.Weber ]
  done

let test_thm36_reduction_sat_at_scale () =
  (* the full n = 4 universe: 32 guards, 40 letters *)
  let u = Witness.Threesat.full_universe 4 in
  let fam = Witness.Dalal_family.make u in
  for _ = 1 to 3 do
    let pi =
      Witness.Threesat.random_instance st u
        ~nclauses:(8 + Random.State.int st 12)
    in
    List.iter
      (fun op ->
        if not (Witness.Dalal_family.reduction_holds_sat op fam pi) then
          Alcotest.failf "Theorem 3.6 SAT-based reduction failed for %s"
            (Revision.Model_based.name op))
      [ Revision.Model_based.Dalal; Revision.Model_based.Weber ]
  done

let test_thm36_kmin_is_n () =
  (* In the proof: k_{T_n, P_n} = n. *)
  let u = Witness.Threesat.sub_universe 3 [ 0; 5 ] in
  let fam = Witness.Dalal_family.make u in
  check_int "k = n" 3
    (Compact.Measure.k_min fam.Witness.Dalal_family.t_n
       fam.Witness.Dalal_family.p_n)

(* -- Theorem 6.5 -------------------------------------------------------------------- *)

let test_thm65_operators_agree () =
  for _ = 1 to 3 do
    let u = random_sub_universe ~max_clauses:2 () in
    let fam = Witness.Iterated_family.make u in
    check_bool "all six operators agree" true
      (Witness.Iterated_family.operators_agree fam)
  done

let test_thm65_reduction () =
  for _ = 1 to 4 do
    let u = random_sub_universe ~max_clauses:2 () in
    let fam = Witness.Iterated_family.make u in
    let pi = random_pi u in
    List.iter
      (fun op ->
        if not (Witness.Iterated_family.reduction_holds op fam pi) then
          Alcotest.failf "Theorem 6.5 fails for %s"
            (Revision.Model_based.name op))
      Revision.Model_based.all
  done

let test_thm65_ps_constant_size () =
  let fam = Witness.Iterated_family.make (Witness.Threesat.full_universe 3) in
  List.iter
    (fun p -> check_int "|P^i| = 2" 2 (Formula.size p))
    fam.Witness.Iterated_family.ps

let test_thm33_entailment_form () =
  (* T *F P |= Q_pi iff M_pi is NOT selected (Q_pi = ~minterm(M_pi)). *)
  let u = random_sub_universe ~max_clauses:2 () in
  let fam = Witness.Forbus_family.make u in
  let pi = random_pi u in
  let q = Witness.Forbus_family.q_pi fam pi in
  let r =
    Revision.Model_based.revise_on Revision.Model_based.Forbus
      (Witness.Forbus_family.alphabet fam)
      (Theory.conj fam.Witness.Forbus_family.t_n)
      fam.Witness.Forbus_family.p_n
  in
  check_bool "entailment form matches model-checking form"
    (not (Witness.Forbus_family.m_pi_selected fam pi))
    (Revision.Result.entails r q)

let test_gfuv_w_pi_shape () =
  let u = Witness.Threesat.sub_universe 3 [ 0; 1; 2 ] in
  let fam = Witness.Gfuv_family.make u in
  let pi = Witness.Threesat.instance u [ 0; 2 ] in
  (* W_pi has exactly one guard literal per universe clause *)
  check_int "guards" 3 (Formula.size (Witness.Gfuv_family.w_pi fam pi))

(* -- explosion examples --------------------------------------------------------------- *)

let test_nebel_example () =
  for m = 1 to 6 do
    let ex = Witness.Nebel_example.make m in
    check_int
      (Printf.sprintf "2^%d worlds" m)
      (1 lsl m)
      (Witness.Nebel_example.world_count ex)
  done;
  (* naive size grows exponentially: size(m) >= 2^m *)
  let s6 = Witness.Nebel_example.naive_size (Witness.Nebel_example.make 6) in
  check_bool "exponential naive size" true (s6 >= 1 lsl 6)

let test_winslett_example () =
  (* |W(T2, P2)| = 2^(m+1) - 1 while |P2| = 1. *)
  for m = 1 to 5 do
    let ex = Witness.Winslett_example.make m in
    check_int
      (Printf.sprintf "worlds at m=%d" m)
      ((1 lsl (m + 1)) - 1)
      (Witness.Winslett_example.world_count ex);
    check_int "P2 constant" 1 (Formula.size ex.Witness.Winslett_example.p2)
  done

(* -- advice machine ---------------------------------------------------------------------- *)

let test_advice_machine_decides_sat () =
  for _ = 1 to 6 do
    let u = random_sub_universe () in
    let machine = Witness.Advice.build u in
    let pi = random_pi u in
    check_bool "machine decides satisfiability"
      (Witness.Threesat.is_satisfiable pi)
      (Witness.Advice.decide_sat machine pi)
  done

let test_advice_size_measured () =
  let u = Witness.Threesat.sub_universe 3 [ 0; 1; 2 ] in
  let machine = Witness.Advice.build u in
  check_bool "advice nonempty" true (Witness.Advice.advice_size machine > 0)

let () =
  Alcotest.run "witness"
    [
      ( "threesat",
        [
          Alcotest.test_case "universe counts" `Quick test_universe_counts;
          Alcotest.test_case "clauses distinct" `Quick
            test_universe_clauses_distinct;
          Alcotest.test_case "satisfiability" `Quick test_instance_sat;
          Alcotest.test_case "guards" `Quick test_instance_guards;
        ] );
      ( "theorem 3.1 (GFUV)",
        [
          Alcotest.test_case "reduction" `Quick test_thm31_reduction;
          Alcotest.test_case "family size polynomial" `Quick
            test_thm31_sizes_polynomial;
        ] );
      ( "theorem 3.2 (Satoh/Winslett/Weber)",
        [ Alcotest.test_case "operator agreement" `Slow test_thm32_agreement ]
      );
      ( "theorem 4.1 (bounded GFUV)",
        [
          Alcotest.test_case "reduction" `Quick test_thm41_reduction;
          Alcotest.test_case "P constant size" `Quick
            test_thm41_p_constant_size;
        ] );
      ( "theorem 3.3 (Forbus)",
        [
          Alcotest.test_case "reduction" `Slow test_thm33_reduction;
          Alcotest.test_case "reduction at scale (SAT)" `Quick
            test_thm33_reduction_sat_at_scale;
          Alcotest.test_case "guard matrix shape" `Quick
            test_thm33_guard_matrix;
        ] );
      ( "theorem 3.6 (Dalal/Weber logical)",
        [
          Alcotest.test_case "reduction" `Quick test_thm36_reduction;
          Alcotest.test_case "reduction at scale (SAT)" `Quick
            test_thm36_reduction_sat_at_scale;
          Alcotest.test_case "k_min = n" `Quick test_thm36_kmin_is_n;
        ] );
      ( "theorem 6.5 (iterated bounded)",
        [
          Alcotest.test_case "operators agree" `Slow
            test_thm65_operators_agree;
          Alcotest.test_case "reduction" `Slow test_thm65_reduction;
          Alcotest.test_case "P^i constant size" `Quick
            test_thm65_ps_constant_size;
        ] );
      ( "family structure",
        [
          Alcotest.test_case "thm 3.3 entailment form" `Slow
            test_thm33_entailment_form;
          Alcotest.test_case "gfuv W_pi shape" `Quick test_gfuv_w_pi_shape;
        ] );
      ( "explosion examples",
        [
          Alcotest.test_case "nebel 2^m worlds" `Quick test_nebel_example;
          Alcotest.test_case "winslett constant P" `Quick
            test_winslett_example;
        ] );
      ( "advice machine (theorem 2.2)",
        [
          Alcotest.test_case "decides 3-SAT" `Quick
            test_advice_machine_decides_sat;
          Alcotest.test_case "advice size measured" `Quick
            test_advice_size_measured;
        ] );
    ]
