(* revkb-lint: the repo's own static analyzer (see lib/lint).

   Usage: revkb_lint [--json] [--report FILE] [--baseline FILE]
                     [--update-baseline] [--usage DIR]... [ROOT]...

   Default roots are lib, bin and bench; test and examples feed the
   usage index (R5 reachability) without being linted.  Exit status: 0
   when every finding is baselined (or there are none), 1 on new
   findings, 2 on usage errors. *)

let usage_msg =
  "revkb_lint [--json] [--report FILE] [--baseline FILE] [--update-baseline] \
   [ROOT]..."

let () =
  let json = ref false in
  let report = ref "" in
  let baseline = ref "" in
  let update_baseline = ref false in
  let usage_dirs = ref [] in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " print findings as JSON lines");
      ( "--report",
        Arg.Set_string report,
        "FILE also write the JSON-lines report to FILE" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE accepted findings; fail only on findings not listed" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline file with the current findings" );
      ( "--usage",
        Arg.String (fun d -> usage_dirs := d :: !usage_dirs),
        "DIR extra directory feeding the usage index only" );
    ]
  in
  Arg.parse (Arg.align spec) (fun r -> roots := r :: !roots) usage_msg;
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bin"; "bench" ] | rs -> rs
  in
  let default_usage =
    List.filter
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "test"; "examples" ]
  in
  let usage_roots = List.rev !usage_dirs @ default_usage in
  let to_inputs pairs =
    List.map (fun (path, content) -> { Lint.Engine.path; content }) pairs
  in
  match
    ( Lint.Engine.collect_tree roots,
      if usage_roots = [] then [] else Lint.Engine.collect_tree usage_roots )
  with
  | exception Sys_error msg ->
      prerr_endline ("revkb-lint: " ^ msg);
      exit 2
  | lint_files, usage_files ->
      let result =
        Lint.Engine.run
          ~usage:(to_inputs usage_files)
          ?baseline:(if !baseline = "" then None else Some !baseline)
          (to_inputs lint_files)
      in
      if !update_baseline then begin
        if !baseline = "" then begin
          prerr_endline "revkb-lint: --update-baseline needs --baseline FILE";
          exit 2
        end;
        let oc = open_out !baseline in
        output_string oc
          "# revkb-lint baseline: rule<TAB>file<TAB>key per accepted \
           finding.\n\
           # Regenerate with: revkb_lint --baseline lint.baseline \
           --update-baseline\n";
        List.iter
          (fun f ->
            output_string oc (Lint.Engine.baseline_line f);
            output_char oc '\n')
          result.findings;
        close_out oc
      end;
      let rendered =
        if !json then Lint.Engine.render_json result
        else Lint.Engine.render_table result
      in
      print_string rendered;
      if !report <> "" then begin
        let oc = open_out !report in
        output_string oc (Lint.Engine.render_json result);
        close_out oc
      end;
      exit (if result.fresh = [] || !update_baseline then 0 else 1)
