(* revkb — command-line interface to the belief-revision library.

   Subcommands:
     revise   apply a revision operator, print models / formula / answer
     compact  build a compact representation (Theorems 3.4/3.5, Section 4/5/6)
     worlds   enumerate W(T, P) — the maximal consistent subsets
     sat      run the bundled CDCL solver on a DIMACS file
     family   generate a witness family instance (Theorems 3.1/3.3/3.6/6.5)
     analyze  static analysis: sizes, fragments, simplification, SAT routing

   Examples:
     revkb revise -o dalal -t 'a & b' -p '~a' --models
     revkb revise -o gfuv -T kb.txt -p '~b' -q 'a'
     revkb compact -o dalal -t 'a & b & c' -p '~a | ~b'
     revkb compact -o winslett --bounded -t 'a & b & c' -p '~a'
     revkb worlds -T kb.txt -p '~b'
     revkb sat problem.cnf

   Observability:
     revkb --stats ... (or REVKB_STATS=1) prints an instrumentation
     snapshot on stderr at exit; revkb trace -o out.json SUBCMD ARGS...
     additionally records every span and writes a Chrome trace_event
     JSON openable in about://tracing or Perfetto. *)

open Cmdliner
open Logic
module Obs = Revkb_obs.Obs
module Gcstats = Revkb_obs.Gcstats
module Profile = Revkb_obs.Profile

(* Telemetry writers are registered on both exit paths: [at_exit] for
   normal termination, and {!Obs.register_flusher} so SIGINT/SIGTERM
   snapshot-and-write before the process re-raises and dies by the
   signal.  Only one path ever runs a given writer (the signal path
   bypasses [at_exit]), but the guard makes each writer idempotent
   regardless. *)
let register_writer f =
  let written = ref false in
  let once () =
    if not !written then begin
      written := true;
      f ()
    end
  in
  at_exit once;
  Obs.register_flusher once

(* The at_exit snapshot prints to stderr: golden CLI tests diff stdout,
   so CI can run the whole suite under REVKB_STATS=1 without churn. *)
(* lint: domain-safe set once during CLI argument handling, before
   any pool work starts *)
let stats_hook = ref false

let enable_stats () =
  Obs.set_enabled true;
  if not !stats_hook then begin
    stats_hook := true;
    Gcstats.enable ();
    register_writer (fun () ->
        Gcstats.sample ();
        prerr_string (Revkb_obs.Export.table (Obs.snapshot ())))
  end

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* -- shared arguments ------------------------------------------------------ *)

(* Worker domains for the parallel engine.  Evaluated as part of each
   subcommand's term so the pool policy is set before any model work
   runs; results are identical at every job count (the pool's
   determinism contract), only the wall clock changes. *)
let jobs_term =
  let doc =
    "Worker domains for enumeration, distance sweeps and batch checks \
     (default: $(b,REVKB_JOBS), else the hardware's recommended domain \
     count).  $(docv)=1 forces the sequential path."
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print an instrumentation snapshot (solver, fragment-route, \
             pool and span statistics) on stderr at exit.  Implied by \
             $(b,REVKB_STATS=1).")
  in
  Term.(
    const (fun jobs stats ->
        (match jobs with
        | Some n -> Revkb_parallel.Pool.set_default_jobs n
        | None -> ());
        if stats || Obs.enabled () then enable_stats ())
    $ jobs $ stats)

let theory_args =
  let t_inline =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "theory-inline" ] ~docv:"FORMULAS"
          ~doc:"The knowledge base, inline (formulas separated by ';').")
  in
  let t_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "T"; "theory-file" ] ~docv:"FILE"
          ~doc:"File holding the knowledge base, one formula per line.")
  in
  let combine inline file =
    match (inline, file) with
    | Some s, None -> `Ok (Parser.theory_of_string s)
    | None, Some path -> `Ok (Parser.theory_of_string (read_file path))
    | None, None -> `Error (true, "a theory is required: use -t or -T")
    | Some _, Some _ -> `Error (true, "use only one of -t / -T")
  in
  Term.(ret (const combine $ t_inline $ t_file))

let p_arg =
  let doc = "The revising formula P." in
  Arg.(required & opt (some string) None & info [ "p" ] ~docv:"FORMULA" ~doc)

let ps_arg =
  let doc =
    "Further revising formulas, applied left to right after $(b,-p) \
     (iterated revision)."
  in
  Arg.(value & opt_all string [] & info [ "then" ] ~docv:"FORMULA" ~doc)

let op_arg =
  let doc =
    "Revision operator: gfuv, widtio, nebel, winslett, borgida, forbus, \
     satoh, dalal or weber."
  in
  let parse s =
    match Revision.Operator.of_name s with
    | Some op -> Ok op
    | None -> Error (`Msg (Printf.sprintf "unknown operator %S" s))
  in
  let print ppf op = Format.pp_print_string ppf (Revision.Operator.name op) in
  Arg.(
    value
    & opt (conv (parse, print)) Revision.Operator.Dalal
    & info [ "o"; "operator" ] ~docv:"OP" ~doc)

let parse_formula s =
  try Parser.formula_of_string s
  with Parser.Syntax_error msg ->
    Printf.eprintf "syntax error in %S: %s\n" s msg;
    exit 2

(* -- revise ----------------------------------------------------------------- *)

let revise_cmd =
  let models_flag =
    Arg.(value & flag & info [ "models" ] ~doc:"Print the model set.")
  in
  let dnf_flag =
    Arg.(value & flag & info [ "dnf" ] ~doc:"Print the naive DNF formula.")
  in
  let min_flag =
    Arg.(
      value & flag
      & info [ "minimized" ] ~doc:"Print the Quine-McCluskey minimized DNF.")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"FORMULA"
          ~doc:"Decide T * P |= Q and print the answer.")
  in
  let run () theory op p ps models_flag dnf_flag min_flag query =
    let p = parse_formula p in
    let ps = List.map parse_formula ps in
    let result =
      match ps with
      | [] -> Revision.Operator.revise op theory p
      | _ -> Revision.Iterate.revise_seq op theory (p :: ps)
    in
    let default = not (models_flag || dnf_flag || min_flag || query <> None) in
    if models_flag || default then
      Format.printf "%a@." Revision.Result.pp result;
    if dnf_flag then
      Format.printf "dnf: %a@." Formula.pp (Revision.Result.to_dnf result);
    if min_flag then
      Format.printf "minimized: %a@." Formula.pp
        (Revision.Result.to_minimized_dnf result);
    (match query with
    | Some q ->
        let q = parse_formula q in
        Format.printf "T * P |= %a : %b@." Formula.pp q
          (Revision.Result.entails result q)
    | None -> ());
    0
  in
  let term =
    Term.(
      const run $ jobs_term $ theory_args $ op_arg $ p_arg $ ps_arg
      $ models_flag $ dnf_flag $ min_flag $ query)
  in
  Cmd.v
    (Cmd.info "revise" ~doc:"Apply a revision operator to a knowledge base.")
    term

(* -- compact ------------------------------------------------------------------ *)

let compact_cmd =
  let bounded_flag =
    Arg.(
      value & flag
      & info [ "bounded" ]
          ~doc:
            "Use the bounded-|P| constructions of Section 4 (formulas \
             (5)-(9); logically equivalent, no new letters).")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Check the construction against the semantic revision \
             (enumerates models; small alphabets only) and print analyzer \
             metrics.")
  in
  let run () theory op p ps bounded verify =
    let t = Theory.conj theory in
    let p = parse_formula p in
    let ps = List.map parse_formula ps in
    let mop =
      match op with
      | Revision.Operator.Winslett -> Revision.Model_based.Winslett
      | Revision.Operator.Borgida -> Revision.Model_based.Borgida
      | Revision.Operator.Forbus -> Revision.Model_based.Forbus
      | Revision.Operator.Satoh -> Revision.Model_based.Satoh
      | Revision.Operator.Dalal -> Revision.Model_based.Dalal
      | Revision.Operator.Weber -> Revision.Model_based.Weber
      | _ ->
          Printf.eprintf
            "compact representations exist for the model-based operators \
             (and trivially for WIDTIO)\n";
          exit 2
    in
    let formula =
      match (ps, bounded) with
      | [], false -> (
          match mop with
          | Revision.Model_based.Dalal -> Compact.Dalal_compact.revise t p
          | Revision.Model_based.Weber -> Compact.Weber_compact.revise t p
          | _ -> Compact.Iterated_bounded.for_op mop t [ p ])
      | [], true -> Compact.Bounded.for_op mop t p
      | ps, _ -> Compact.Iterated_bounded.for_op mop t (p :: ps)
    in
    Format.printf "%a@." Formula.pp formula;
    Format.printf "# size %d (input %d)@." (Formula.size formula)
      (Formula.size t + Formula.size p
      + List.fold_left (fun acc q -> acc + Formula.size q) 0 ps);
    if verify then begin
      let result =
        match ps with
        | [] -> Revision.Operator.revise op theory p
        | _ -> Revision.Iterate.revise_seq op theory (p :: ps)
      in
      Format.printf "%a@." (fun ppf () -> Compact.Verify.report ppf result formula) ()
    end;
    0
  in
  let term =
    Term.(
      const run $ jobs_term $ theory_args $ op_arg $ p_arg $ ps_arg
      $ bounded_flag $ verify_flag)
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Build a compact representation of the revised knowledge base \
          (Theorems 3.4/3.5, Sections 4-6).")
    term

(* -- compile ------------------------------------------------------------------ *)

let compile_cmd =
  let p_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "p" ] ~docv:"FORMULA"
          ~doc:
            "Revise the compiled theory by this formula (on the diagrams, \
             model-based operators only) and report/query the result.")
  in
  let sift_flag =
    Arg.(
      value & flag
      & info [ "sift" ]
          ~doc:"Run one Rudell sifting pass after compiling and report the \
                reduced size.")
  in
  let no_force =
    Arg.(
      value & flag
      & info [ "no-force" ]
          ~doc:"Skip the FORCE structural order; use the letters in sorted \
                order.")
  in
  let queries =
    Arg.(
      value & opt_all string []
      & info [ "q"; "query" ] ~docv:"FORMULA"
          ~doc:"Decide entailment against the compiled (revised) diagram; \
                repeatable.")
  in
  let count_flag =
    Arg.(
      value & flag
      & info [ "count" ] ~doc:"Print the model count of the compiled KB.")
  in
  let run () theory op p ps sift_pass no_force queries count_flag =
    let t = Theory.conj theory in
    let order =
      if no_force then Some (Var.Set.elements (Formula.vars t)) else None
    in
    let compiled = Semantics.Compiled.compile ?order t in
    let mgr = Semantics.Compiled.manager compiled in
    Format.printf "letters: %d@." (List.length (Semantics.Compiled.order compiled));
    Format.printf "order: %a@."
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Var.pp)
      (Semantics.Compiled.order compiled);
    Format.printf "theory nodes: %d@." (Semantics.Compiled.size compiled);
    if sift_pass then begin
      Bdd.sift mgr;
      Format.printf "after sifting: %d nodes@." (Semantics.Compiled.size compiled)
    end;
    if count_flag then
      Format.printf "models: %d@." (Semantics.Compiled.count compiled);
    let target =
      match p with
      | None ->
          if ps <> [] then begin
            Printf.eprintf "--then requires -p\n";
            exit 2
          end;
          Semantics.Compiled.root compiled
      | Some p ->
          let reviser =
            match op with
            | Revision.Operator.Winslett -> Bdd.Revise.winslett
            | Revision.Operator.Borgida -> Bdd.Revise.borgida
            | Revision.Operator.Forbus -> Bdd.Revise.forbus
            | Revision.Operator.Satoh -> Bdd.Revise.satoh
            | Revision.Operator.Dalal -> Bdd.Revise.dalal
            | Revision.Operator.Weber -> Bdd.Revise.weber
            | _ ->
                Printf.eprintf
                  "diagram revision covers the model-based operators\n";
                exit 2
          in
          let steps = List.map parse_formula (p :: ps) in
          List.iter
            (fun q -> Bdd.extend mgr (Var.Set.elements (Formula.vars q)))
            steps;
          let result =
            List.fold_left
              (fun acc q ->
                let qn = Bdd.of_formula mgr q in
                Format.printf "revising nodes: %d@." (Bdd.node_count qn);
                reviser mgr acc qn)
              (Semantics.Compiled.root compiled)
              steps
          in
          Format.printf "revised nodes: %d@." (Bdd.node_count result);
          if count_flag then
            Format.printf "revised models: %d@." (Bdd.sat_count mgr result);
          result
    in
    List.iter
      (fun q ->
        let qf = parse_formula q in
        Bdd.extend mgr (Var.Set.elements (Formula.vars qf));
        let qn = Bdd.of_formula mgr qf in
        Format.printf "|= %a : %b@." Formula.pp qf
          (Bdd.is_false (Bdd.and_ target (Bdd.not_ qn))))
      queries;
    0
  in
  let term =
    Term.(
      const run $ jobs_term $ theory_args $ op_arg $ p_opt $ ps_arg
      $ sift_flag $ no_force $ queries $ count_flag)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a knowledge base to an ROBDD (the serving read path): \
          report diagram sizes and variable orders, optionally revise on \
          the compiled form ($(b,-o), $(b,-p)), sift, and answer \
          entailment queries in diagram-linear time.")
    term

(* -- worlds ------------------------------------------------------------------- *)

let worlds_cmd =
  let run () theory p =
    let p = parse_formula p in
    let ws = Revision.Formula_based.worlds theory p in
    Format.printf "%d possible world(s):@." (List.length ws);
    List.iter (fun w -> Format.printf "  %a@." Theory.pp w) ws;
    let widtio = Revision.Formula_based.widtio theory p in
    Format.printf "WIDTIO: %a@." Theory.pp widtio;
    0
  in
  let term = Term.(const run $ jobs_term $ theory_args $ p_arg) in
  Cmd.v
    (Cmd.info "worlds"
       ~doc:"Enumerate W(T, P): the maximal subsets of T consistent with P.")
    term

(* -- sat ---------------------------------------------------------------------- *)

let sat_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"DIMACS CNF file.")
  in
  let run path =
    let nvars, clauses =
      try Satsolver.Dimacs.parse_file path
      with Satsolver.Dimacs.Parse_error { line; msg } ->
        Printf.eprintf "revkb: %s:%d: %s\n" path line msg;
        exit 1
    in
    let solver = Satsolver.Solver.create () in
    (* Allocate up to the header's declared count so the v line covers
       variables that appear in no clause (reported as false). *)
    Satsolver.Solver.ensure_nvars solver nvars;
    Satsolver.Dimacs.load solver clauses;
    if Satsolver.Solver.solve solver then begin
      print_endline "s SATISFIABLE";
      let model = Satsolver.Solver.model solver in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v ";
      Array.iteri
        (fun v b ->
          Buffer.add_string buf (string_of_int (if b then v + 1 else -(v + 1)));
          Buffer.add_char buf ' ')
        model;
      Buffer.add_string buf "0";
      print_endline (Buffer.contents buf);
      0
    end
    else begin
      print_endline "s UNSATISFIABLE";
      0
    end
  in
  Cmd.v
    (Cmd.info "sat" ~doc:"Run the bundled CDCL solver on a DIMACS file.")
    Term.(const run $ file)

(* -- family ------------------------------------------------------------------- *)

let family_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum
             [
               ("gfuv", `Gfuv);
               ("forbus", `Forbus);
               ("dalal", `Dalal);
               ("iterated", `Iterated);
               ("nebel", `Nebel);
               ("winslett", `Winslett);
             ])) None
      & info [] ~docv:"FAMILY"
          ~doc:
            "Witness family: gfuv (Thm 3.1), forbus (Thm 3.3), dalal (Thm \
             3.6), iterated (Thm 6.5), nebel or winslett (Section 3.1 \
             examples).")
  in
  let size =
    Arg.(
      value & opt int 3
      & info [ "n" ] ~docv:"N"
          ~doc:"Parameter: number of 3-SAT atoms, or m for the examples.")
  in
  let run which n =
    (match which with
    | `Gfuv ->
        let fam = Witness.Gfuv_family.make (Witness.Threesat.full_universe n) in
        Format.printf "# T_n (%d atomic facts):@.%a@.# P_n:@.%a@."
          (List.length fam.Witness.Gfuv_family.t_n)
          Theory.pp fam.Witness.Gfuv_family.t_n Formula.pp
          fam.Witness.Gfuv_family.p_n
    | `Forbus ->
        let fam =
          Witness.Forbus_family.make (Witness.Threesat.full_universe n)
        in
        Format.printf "# T_n:@.%a@.# P_n:@.%a@." Theory.pp
          fam.Witness.Forbus_family.t_n Formula.pp
          fam.Witness.Forbus_family.p_n
    | `Dalal ->
        let fam =
          Witness.Dalal_family.make (Witness.Threesat.full_universe n)
        in
        Format.printf "# T_n:@.%a@.# P_n:@.%a@." Formula.pp
          fam.Witness.Dalal_family.t_n Formula.pp fam.Witness.Dalal_family.p_n
    | `Iterated ->
        let fam =
          Witness.Iterated_family.make (Witness.Threesat.full_universe n)
        in
        Format.printf "# T_n:@.%a@." Formula.pp
          fam.Witness.Iterated_family.t_n;
        List.iteri
          (fun i p -> Format.printf "# P%d:@.%a@." (i + 1) Formula.pp p)
          fam.Witness.Iterated_family.ps
    | `Nebel ->
        let ex = Witness.Nebel_example.make n in
        Format.printf "# T1:@.%a@.# P1:@.%a@.# worlds: %d@." Theory.pp
          ex.Witness.Nebel_example.t1 Formula.pp ex.Witness.Nebel_example.p1
          (Witness.Nebel_example.world_count ex)
    | `Winslett ->
        let ex = Witness.Winslett_example.make n in
        Format.printf "# T2:@.%a@.# P2:@.%a@.# worlds: %d@." Theory.pp
          ex.Witness.Winslett_example.t2 Formula.pp
          ex.Witness.Winslett_example.p2
          (Witness.Winslett_example.world_count ex));
    0
  in
  Cmd.v
    (Cmd.info "family"
       ~doc:"Generate a hardness witness family (Sections 3-6).")
    Term.(const run $ which $ size)

(* -- check -------------------------------------------------------------------- *)

let check_cmd =
  let interp_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "model" ] ~docv:"LETTERS"
          ~doc:
            "Interpretation to check, as a comma-separated list of the true              letters (empty string for the all-false interpretation).")
  in
  let run () theory op p m =
    let t = Theory.conj theory in
    let p = parse_formula p in
    let interp =
      if String.trim m = "" then Var.Set.empty
      else
        Var.set_of_list
          (List.map
             (fun x -> Var.named (String.trim x))
             (String.split_on_char ',' m))
    in
    let mop =
      match op with
      | Revision.Operator.Winslett -> Revision.Model_based.Winslett
      | Revision.Operator.Borgida -> Revision.Model_based.Borgida
      | Revision.Operator.Forbus -> Revision.Model_based.Forbus
      | Revision.Operator.Satoh -> Revision.Model_based.Satoh
      | Revision.Operator.Dalal -> Revision.Model_based.Dalal
      | Revision.Operator.Weber -> Revision.Model_based.Weber
      | _ ->
          Printf.eprintf
            "SAT-based model checking covers the model-based operators
";
          exit 2
    in
    Format.printf "M |= T * P : %b@."
      (Compact.Check.model_check mop t p interp);
    0
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "SAT-based model checking M |= T * P (no model enumeration; scales           to large alphabets).")
    Term.(const run $ jobs_term $ theory_args $ op_arg $ p_arg $ interp_arg)

(* -- analyze ------------------------------------------------------------------ *)

let analyze_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Formula file (formulas separated by ';' or newlines are \
                read as a theory and analyzed as their conjunction).")
  in
  let inline =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "formula" ] ~docv:"FORMULA" ~doc:"Inline formula.")
  in
  let run file inline =
    let src =
      match (file, inline) with
      | Some path, None -> read_file path
      | None, Some s -> s
      | None, None ->
          Printf.eprintf "a formula is required: give a FILE or use -f\n";
          exit 2
      | Some _, Some _ ->
          Printf.eprintf "use only one of FILE / -f\n";
          exit 2
    in
    let theory =
      try Parser.theory_of_string src
      with Parser.Syntax_error msg ->
        Printf.eprintf "syntax error: %s\n" msg;
        exit 2
    in
    let f = Theory.conj theory in
    Format.printf "%a@." Revkb_analysis.Report.pp
      (Revkb_analysis.Report.analyze f);
    0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis of a formula: size metrics (tree and DAG), \
          fragment classification, sound simplification, and a \
          satisfiability verdict via the cheapest applicable procedure.")
    Term.(const run $ file $ inline)

(* -- repl --------------------------------------------------------------------- *)

let repl_cmd =
  let op_default =
    Arg.(
      value
      & opt string "dalal"
      & info [ "o"; "operator" ] ~docv:"OP" ~doc:"Initial operator.")
  in
  let run opname theory_opt =
    let op =
      match Revision.Operator.of_name opname with
      | Some op -> op
      | None ->
          Printf.eprintf "unknown operator %S\n" opname;
          exit 2
    in
    let base = Option.value ~default:[] theory_opt in
    let session = ref (Compact.Session.create ~op base) in
    let base_ref = ref base in
    print_endline
      "revkb interactive session (paper section 6.2 strategy: revisions are";
    print_endline
      "logged and incorporated on access).  Type 'help' for commands.";
    let help () =
      print_string
        {|  assert FORMULA   add a formula to the base theory (resets the log)
  revise FORMULA   log a revision (incorporated lazily)
  ask FORMULA      decide  T * P1 * ... * Pm |= FORMULA
  models           print the current model set
  compile          print a query-equivalent compact representation
  log              show the revision log
  show             show the base theory and operator
  op NAME          switch operator (keeps base, resets the log)
  reset            drop the revision log
  quit             exit
|}
    in
    let handle line =
      let line = String.trim line in
      let cmd, arg =
        match String.index_opt line ' ' with
        | None -> (line, "")
        | Some i ->
            ( String.sub line 0 i,
              String.trim (String.sub line i (String.length line - i)) )
      in
      match cmd with
      | "" -> true
      | "help" ->
          help ();
          true
      | "quit" | "exit" -> false
      | "assert" ->
          (try
             let f = Parser.formula_of_string arg in
             base_ref := !base_ref @ [ f ];
             session :=
               Compact.Session.create ~op:(Compact.Session.op !session)
                 !base_ref;
             Format.printf "base now has %d formula(s)@."
               (List.length !base_ref)
           with Parser.Syntax_error m -> Printf.printf "syntax error: %s\n" m);
          true
      | "revise" ->
          (try
             Compact.Session.revise !session (Parser.formula_of_string arg);
             Format.printf "logged (%d pending revision(s))@."
               (List.length (Compact.Session.log !session))
           with
          | Parser.Syntax_error m -> Printf.printf "syntax error: %s\n" m
          | Invalid_argument m -> Printf.printf "error: %s\n" m);
          true
      | "ask" ->
          (try
             let q = Parser.formula_of_string arg in
             Format.printf "%b@." (Compact.Session.ask !session q)
           with
          | Parser.Syntax_error m -> Printf.printf "syntax error: %s\n" m
          | Invalid_argument m -> Printf.printf "error: %s\n" m);
          true
      | "models" ->
          (try
             Format.printf "%a@." Revision.Result.pp
               (Compact.Session.result !session)
           with Invalid_argument m -> Printf.printf "error: %s\n" m);
          true
      | "compile" ->
          (try
             let f = Compact.Session.compile !session in
             Format.printf "%a@.# size %d@." Formula.pp f (Formula.size f)
           with Invalid_argument m -> Printf.printf "error: %s\n" m);
          true
      | "log" ->
          List.iteri
            (fun i p -> Format.printf "P%d = %a@." (i + 1) Formula.pp p)
            (Compact.Session.log !session);
          true
      | "show" ->
          Format.printf "operator: %s@.base: %a@."
            (Revision.Operator.name (Compact.Session.op !session))
            Theory.pp !base_ref;
          true
      | "op" ->
          (match Revision.Operator.of_name arg with
          | Some op ->
              session := Compact.Session.create ~op !base_ref;
              Format.printf "operator set to %s (log reset)@."
                (Revision.Operator.name op)
          | None -> Printf.printf "unknown operator %S\n" arg);
          true
      | "reset" ->
          session :=
            Compact.Session.create ~op:(Compact.Session.op !session) !base_ref;
          print_endline "log cleared";
          true
      | other ->
          Printf.printf "unknown command %S (try 'help')\n" other;
          true
    in
    let rec loop () =
      print_string "revkb> ";
      match read_line () with
      | exception End_of_file -> ()
      | line -> if handle line then loop ()
    in
    loop ();
    0
  in
  let theory_opt =
    let t_file =
      Arg.(
        value
        & opt (some file) None
        & info [ "T"; "theory-file" ] ~docv:"FILE"
            ~doc:"Initial knowledge base, one formula per line.")
    in
    Term.(
      const (Option.map (fun p -> Parser.theory_of_string (read_file p)))
      $ t_file)
  in
  Cmd.v
    (Cmd.info "repl"
       ~doc:
         "Interactive session: log revisions, incorporate on access           (Section 6.2 strategy).")
    Term.(const run $ op_default $ theory_opt)

(* -- serve -------------------------------------------------------------------- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix domain socket bound at $(docv) (one client \
             at a time); default is stdin/stdout.")
  in
  let cache_cap =
    Arg.(
      value & opt int 256
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:
            "Capacity of the epoch-keyed revision cache (LRU entries, \
             default 256).")
  in
  let run () socket cache_cap =
    if cache_cap < 1 then begin
      Printf.eprintf "revkb serve: --cache-cap must be >= 1\n";
      exit 2
    end;
    let server = Revkb_serve.Server.create ~cache_cap () in
    (match socket with
    | Some path -> Revkb_serve.Server.serve_socket server path
    | None -> Revkb_serve.Server.serve_fd server Unix.stdin Unix.stdout);
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived revision service: newline-delimited JSON requests \
          (verbs $(b,load), $(b,update), $(b,revise), $(b,query), \
          $(b,check), $(b,count), $(b,compile), $(b,stats), $(b,batch), \
          $(b,shutdown)) against a named-KB registry with pooled \
          incremental sessions, an optional compiled ROBDD route, an \
          epoch-keyed LRU revision cache, and pool-fanned batch model \
          checking.  One instrumentation snapshot is emitted per process \
          at exit; SIGTERM drains the in-flight request before the \
          telemetry writers run.")
    Term.(const run $ jobs_term $ socket $ cache_cap)

(* -- trace -------------------------------------------------------------------- *)

(* [revkb trace [-o FILE] SUBCMD ARGS...] is handled by a pre-scan of
   argv, not a cmdliner subcommand: the wrapped subcommand's own options
   (including its [-o OPERATOR]) must pass through untouched, which
   [pos_all] cannot deliver.  Only [-o]/[--output] before the first
   non-option token belong to trace; everything from the subcommand name
   on is re-evaluated against the normal command group.  The writer runs
   from [at_exit] so traces survive subcommands that [exit] directly. *)
let trace_prescan argv =
  let n = Array.length argv in
  if n < 2 || argv.(1) <> "trace" then argv
  else begin
    let out = ref "trace.json" in
    let rec scan i =
      if i >= n then []
      else
        match argv.(i) with
        | "-o" | "--output" ->
            if i + 1 >= n then begin
              prerr_endline "revkb trace: -o requires a file argument";
              exit 2
            end;
            out := argv.(i + 1);
            scan (i + 2)
        | _ -> Array.to_list (Array.sub argv i (n - i))
    in
    match scan 2 with
    | [] ->
        prerr_endline
          "revkb trace: missing a subcommand to trace\n\
           usage: revkb trace [-o FILE] SUBCMD ARGS...";
        exit 2
    | sub ->
        let path = !out in
        Obs.set_tracing true;
        enable_stats ();
        register_writer (fun () ->
            let events = Obs.trace_events () in
            let oc = open_out path in
            output_string oc (Revkb_obs.Export.chrome_trace events);
            close_out oc;
            let dropped = Obs.trace_dropped () in
            Printf.eprintf "trace: %d event(s)%s -> %s\n%!"
              (List.length events)
              (if dropped > 0 then Printf.sprintf ", %d dropped" dropped
               else "")
              path);
        Array.of_list (argv.(0) :: sub)
  end

(* -- profile ------------------------------------------------------------------ *)

(* [revkb profile [-o FILE] [--hz N] SUBCMD ARGS...] — the same
   pre-scan shape as [trace]: profiler options must precede the wrapped
   subcommand, which is then re-evaluated against the normal command
   group with its own arguments untouched. *)
let profile_prescan argv =
  let n = Array.length argv in
  if n < 2 || argv.(1) <> "profile" then argv
  else begin
    let out = ref "profile.folded" in
    let hz = ref 99 in
    let rec scan i =
      if i >= n then []
      else
        match argv.(i) with
        | "-o" | "--output" ->
            if i + 1 >= n then begin
              prerr_endline "revkb profile: -o requires a file argument";
              exit 2
            end;
            out := argv.(i + 1);
            scan (i + 2)
        | "--hz" ->
            if i + 1 >= n then begin
              prerr_endline "revkb profile: --hz requires an integer argument";
              exit 2
            end;
            (match int_of_string_opt argv.(i + 1) with
            | Some v when v >= 1 && v <= 1000 -> hz := v
            | _ ->
                Printf.eprintf
                  "revkb profile: invalid --hz %S (range 1..1000)\n"
                  argv.(i + 1);
                exit 2);
            scan (i + 2)
        | _ -> Array.to_list (Array.sub argv i (n - i))
    in
    match scan 2 with
    | [] ->
        prerr_endline
          "revkb profile: missing a subcommand to profile\n\
           usage: revkb profile [-o FILE] [--hz N] SUBCMD ARGS...";
        exit 2
    | sub ->
        let path = !out in
        (* Spans feed sample attribution, so recording goes on. *)
        enable_stats ();
        Profile.start ~hz:!hz ();
        register_writer (fun () ->
            Profile.stop ();
            let stacks = Profile.write path in
            Printf.eprintf "profile: %d sample(s), %d stack(s)%s -> %s\n%!"
              (Profile.sample_count ()) (List.length stacks)
              (let d = Profile.dropped () in
               if d > 0 then Printf.sprintf ", %d dropped" d else "")
              path);
        Array.of_list (argv.(0) :: sub)
  end

(* Documentation stub, like [trace_cmd]. *)
let profile_cmd =
  let term =
    Term.(
      ret
        (const
           (`Error
              (true, "usage: revkb profile [-o FILE] [--hz N] SUBCMD ARGS..."))))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run any subcommand under the wall-clock sampling profiler \
          (SIGALRM at $(b,--hz) samples/second, default 99) and write \
          collapsed stacks (default $(b,profile.folded), or $(b,-o) \
          FILE) in the folded format flamegraph.pl and speedscope read \
          directly.  Samples are attributed to the innermost open span \
          via a synthetic [span] root frame.  Profiler options must \
          precede the wrapped subcommand; everything after it is passed \
          through verbatim.")
    term

(* -- metrics ------------------------------------------------------------------ *)

(* [--metrics-out FILE] is accepted anywhere on any subcommand's
   command line, so it too is an argv pre-scan: the flag (and its
   argument) are stripped before cmdliner sees them, recording is
   turned on, and the final snapshot is written as an OpenMetrics text
   exposition — also on fatal signals, via [register_writer]. *)
let metrics_prescan argv =
  let n = Array.length argv in
  let out = ref None in
  let keep = ref [] in
  let i = ref 0 in
  while !i < n do
    (match argv.(!i) with
    | "--metrics-out" ->
        if !i + 1 >= n then begin
          prerr_endline "revkb: --metrics-out requires a file argument";
          exit 2
        end;
        out := Some argv.(!i + 1);
        incr i
    | s when String.length s > 14 && String.sub s 0 14 = "--metrics-out=" ->
        out := Some (String.sub s 14 (String.length s - 14))
    | s -> keep := s :: !keep);
    incr i
  done;
  match !out with
  | None -> argv
  | Some path ->
      Obs.set_enabled true;
      Gcstats.enable ();
      register_writer (fun () ->
          Gcstats.sample ();
          let oc = open_out path in
          output_string oc (Revkb_obs.Export.openmetrics (Obs.snapshot ()));
          close_out oc);
      Array.of_list (List.rev !keep)

(* Documentation stub: the pre-scan intercepts any real invocation, so
   this term only renders help ([revkb help trace]). *)
let trace_cmd =
  let term =
    Term.(
      ret
        (const
           (`Error (true, "usage: revkb trace [-o FILE] SUBCMD ARGS..."))))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run any subcommand with span tracing on and write a Chrome \
          trace_event JSON (default $(b,trace.json), or $(b,-o) FILE) \
          openable in about://tracing or Perfetto.  Trace options must \
          precede the wrapped subcommand; everything after it is passed \
          through verbatim.")
    term

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "revkb" ~version:"1.0.0"
      ~doc:
        "Belief revision operators, their compact representations, and the \
         witness families from 'The Size of a Revised Knowledge Base' \
         (PODS'95)."
  in
  (* [--metrics-out] can sit anywhere, so it is stripped once up
     front; [trace] and [profile] wrap a subcommand each, and the
     fixpoint lets them compose in either order ([revkb trace profile
     SUBCMD ...] profiles inside a trace and vice versa). *)
  let rec prescan argv =
    let argv' = profile_prescan (trace_prescan argv) in
    if argv' == argv then argv else prescan argv'
  in
  exit
    (Cmd.eval' ~argv:(prescan (metrics_prescan Sys.argv))
       (Cmd.group ~default info
          [
            revise_cmd;
            compact_cmd;
            compile_cmd;
            worlds_cmd;
            sat_cmd;
            family_cmd;
            check_cmd;
            analyze_cmd;
            repl_cmd;
            serve_cmd;
            trace_cmd;
            profile_cmd;
          ]))
